"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.scenario == "walk"
        assert args.seed == 7

    def test_fig2a_args(self):
        args = build_parser().parse_args(
            ["fig2a", "--trials", "5", "--scenario", "rotation"]
        )
        assert args.trials == 5
        assert args.scenario == "rotation"

    def test_bad_scenario_rejected(self, capsys):
        # Validated against the scenario registry at command time, not
        # by argparse: unknown names exit 2 listing the choices.
        assert main(["demo", "--scenario", "flying"]) == 2
        err = capsys.readouterr().err
        assert "flying" in err
        assert "walk" in err


class TestCommands:
    def test_fsm_ascii(self, capsys):
        assert main(["fsm"]) == 0
        output = capsys.readouterr().out
        assert "N-RBA" in output
        assert "[E]" in output

    def test_fsm_dot(self, capsys):
        assert main(["fsm", "--dot", "--guards"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("digraph")
        assert "handover trigger" in output

    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "3", "--duration", "3.0"]) == 0
        output = capsys.readouterr().out
        assert "final serving cell" in output

    def test_fig2a_small(self, capsys):
        assert main(["fig2a", "--trials", "3"]) == 0
        output = capsys.readouterr().out
        assert "narrow" in output
        assert "omni" in output

    def test_fig2c_small(self, capsys):
        assert main(["fig2c", "--trials", "2", "--cdf"]) == 0
        output = capsys.readouterr().out
        assert "walk" in output
        assert "CDF" in output

    def test_compare_small(self, capsys):
        assert main(["compare", "--trials", "2", "--scenario", "walk"]) == 0
        output = capsys.readouterr().out
        assert "silent-tracker" in output
        assert "reactive" in output

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--trials", "2", "--output", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Silent Tracker reproduction report")
        assert "Fig. 2a" in text
        assert "Fig. 2c" in text
