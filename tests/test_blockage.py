"""Unit tests for the blockage renewal process."""

import numpy as np
import pytest

from repro.phy.blockage import BlockageConfig, BlockageEvent, BlockageProcess


def make(rate=1.0, seed=1, **kwargs):
    config = BlockageConfig(rate_per_s=rate, **kwargs)
    return BlockageProcess(config, np.random.default_rng(seed))


class TestEvent:
    def test_duration(self):
        event = BlockageEvent(1.0, 1.5, 20.0)
        assert event.duration_s == 0.5

    def test_active_interval_half_open(self):
        event = BlockageEvent(1.0, 1.5, 20.0)
        assert event.active_at(1.0)
        assert event.active_at(1.49)
        assert not event.active_at(1.5)
        assert not event.active_at(0.99)


class TestConfig:
    def test_disabled(self):
        config = BlockageConfig.disabled()
        assert config.rate_per_s == 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            BlockageConfig(rate_per_s=-1.0)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            BlockageConfig(mean_duration_s=0.0)


class TestProcess:
    def test_disabled_never_blocks(self):
        process = BlockageProcess(
            BlockageConfig.disabled(), np.random.default_rng(1)
        )
        for t in (0.0, 1.0, 100.0):
            assert process.attenuation_db(t) == 0.0

    def test_deterministic_given_rng(self):
        a = make(seed=3)
        b = make(seed=3)
        times = np.linspace(0, 20, 200)
        assert [a.attenuation_db(t) for t in times] == [
            b.attenuation_db(t) for t in times
        ]

    def test_rejects_time_reversal(self):
        process = make()
        process.attenuation_db(5.0)
        with pytest.raises(ValueError):
            process.attenuation_db(4.0)

    def test_same_time_requery_ok(self):
        process = make()
        first = process.attenuation_db(2.0)
        assert process.attenuation_db(2.0) == first

    def test_blocked_fraction_plausible(self):
        """Duty cycle ~= rate * duration / (1 + rate * duration)."""
        rate, duration = 0.5, 0.4
        process = make(rate=rate, mean_duration_s=duration, seed=9)
        times = np.arange(0.0, 2000.0, 0.05)
        blocked = np.mean([process.attenuation_db(t) > 0 for t in times])
        expected = rate * duration / (1 + rate * duration)
        assert blocked == pytest.approx(expected, rel=0.3)

    def test_attenuation_depth(self):
        process = make(rate=2.0, mean_attenuation_db=20.0, seed=4)
        depths = []
        for t in np.arange(0.0, 500.0, 0.02):
            value = process.attenuation_db(t)
            if value > 0:
                depths.append(value)
        assert depths, "expected some blockage over 500 s at rate 2/s"
        assert np.mean(depths) == pytest.approx(20.0, abs=3.0)

    def test_attenuation_never_negative(self):
        process = make(rate=5.0, mean_attenuation_db=2.0,
                       attenuation_sigma_db=5.0, seed=6)
        for t in np.arange(0.0, 50.0, 0.05):
            assert process.attenuation_db(t) >= 0.0

    def test_is_blocked_consistent(self):
        process = make(rate=2.0, seed=8)
        for t in np.arange(0.0, 30.0, 0.1):
            attenuation = process.attenuation_db(t)
            assert process.is_blocked(t) == (attenuation > 0.0)

    def test_pruning_bounds_memory(self):
        process = make(rate=5.0, seed=2)
        for t in np.arange(0.0, 500.0, 0.5):
            process.attenuation_db(t)
        # Old events are pruned; the live list stays small.
        assert process.events_generated < 50
