"""Tests for the ping-pong (hysteresis) ablation."""

import pytest

from repro.experiments.pingpong import (
    _count_ping_pongs,
    run_pingpong_trial,
    summarize_pingpong,
    sweep_time_to_trigger,
)
from repro.net.handover import HandoverRecord


def completed_record(src, dst, t):
    record = HandoverRecord("ue0", src, dst, trigger_s=t)
    record.complete_s = t + 0.05
    return record


class TestPingPongCounter:
    def test_no_records(self):
        assert _count_ping_pongs([]) == 0

    def test_single_handover_no_pingpong(self):
        assert _count_ping_pongs([completed_record("A", "B", 1.0)]) == 0

    def test_immediate_return_counts(self):
        records = [
            completed_record("A", "B", 1.0),
            completed_record("B", "A", 2.0),
        ]
        assert _count_ping_pongs(records) == 1

    def test_forward_progress_not_counted(self):
        records = [
            completed_record("A", "B", 1.0),
            completed_record("B", "C", 2.0),
        ]
        assert _count_ping_pongs(records) == 0

    def test_incomplete_ignored(self):
        incomplete = HandoverRecord("ue0", "B", "A", trigger_s=2.0)
        records = [completed_record("A", "B", 1.0), incomplete]
        assert _count_ping_pongs(records) == 0

    def test_oscillation_chain(self):
        records = [
            completed_record("A", "B", 1.0),
            completed_record("B", "A", 2.0),
            completed_record("A", "B", 3.0),
        ]
        assert _count_ping_pongs(records) == 2


class TestTrials:
    def test_trial_runs(self):
        result = run_pingpong_trial(0.0, seed=3, duration_s=6.0)
        assert result.handovers >= 0
        assert result.ping_pongs <= max(0, result.handovers - 1)

    def test_deterministic(self):
        a = run_pingpong_trial(0.16, seed=9, duration_s=6.0)
        b = run_pingpong_trial(0.16, seed=9, duration_s=6.0)
        assert a == b

    def test_large_ttt_suppresses_handover(self):
        # A TTT longer than the run disables the margin-triggered path;
        # only RLF-forced handovers (which rightly bypass TTT — the
        # serving link is already dead) can remain.
        suppressed = run_pingpong_trial(99.0, seed=3, duration_s=4.0)
        baseline = run_pingpong_trial(0.0, seed=3, duration_s=4.0)
        assert suppressed.handovers <= baseline.handovers


class TestSweep:
    def test_sweep_shape(self):
        sweep = sweep_time_to_trigger(
            ttt_s_values=(0.0, 0.16), n_trials=3, base_seed=8100
        )
        assert set(sweep) == {"ttt=0ms", "ttt=160ms"}
        rows = summarize_pingpong(sweep)
        assert len(rows) == 2
        for row in rows:
            assert row["mean_handovers"] >= 0.0

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            sweep_time_to_trigger(n_trials=0)
