"""Unit tests for the composite channel."""

import pytest

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.phy.blockage import BlockageConfig
from repro.phy.channel import Channel, ChannelConfig
from repro.phy.pathloss import CloseInPathLoss
from repro.sim.rng import RngRegistry


def make_channel(config=None, seed=1):
    return Channel(config or ChannelConfig.deterministic(), RngRegistry(seed))


TX = Pose(Vec3(0.0, 10.0))
RX = Pose(Vec3(10.0, 0.0))


class TestDeterministicChannel:
    def test_rss_equals_link_budget_identity(self):
        channel = make_channel()
        distance = TX.position.distance_to(RX.position)
        expected = 10.0 + 15.0 + 12.0 - channel.pathloss.path_loss_db(distance)
        rss = channel.rss_dbm("l", 0.0, TX, RX, 15.0, 12.0, 10.0)
        assert rss == pytest.approx(expected)

    def test_mean_rss_matches_deterministic(self):
        channel = make_channel()
        assert channel.mean_rss_dbm(TX, RX, 15.0, 12.0, 10.0) == pytest.approx(
            channel.rss_dbm("l", 0.0, TX, RX, 15.0, 12.0, 10.0)
        )

    def test_rss_decreases_with_distance(self):
        channel = make_channel()
        near = channel.mean_rss_dbm(TX, Pose(Vec3(2.0, 10.0)), 0.0, 0.0, 0.0)
        far = channel.mean_rss_dbm(TX, Pose(Vec3(50.0, 10.0)), 0.0, 0.0, 0.0)
        assert near > far

    def test_gains_add_linearly(self):
        channel = make_channel()
        base = channel.rss_dbm("l", 0.0, TX, RX, 0.0, 0.0, 0.0)
        boosted = channel.rss_dbm("l", 0.0, TX, RX, 10.0, 5.0, 3.0)
        assert boosted == pytest.approx(base + 18.0)


class TestStochasticChannel:
    def test_reproducible_by_seed(self):
        config = ChannelConfig()
        a = make_channel(config, seed=42)
        b = make_channel(config, seed=42)
        times = [0.02 * k for k in range(50)]
        series_a = [a.rss_dbm("x", t, TX, RX, 10.0, 10.0, 0.0) for t in times]
        series_b = [b.rss_dbm("x", t, TX, RX, 10.0, 10.0, 0.0) for t in times]
        assert series_a == series_b

    def test_different_links_decorrelated(self):
        channel = make_channel(ChannelConfig(), seed=1)
        a = [channel.rss_dbm("a", 0.02 * k, TX, RX, 0.0, 0.0, 0.0) for k in range(20)]
        b = [channel.rss_dbm("b", 0.02 * k, TX, RX, 0.0, 0.0, 0.0) for k in range(20)]
        assert a != b

    def test_include_fading_flag(self):
        config = ChannelConfig(
            shadowing_sigma_db=0.0,
            blockage=BlockageConfig.disabled(),
            rician_k_db=5.0,
        )
        channel = make_channel(config, seed=2)
        no_fading = channel.rss_dbm(
            "l", 0.0, TX, RX, 0.0, 0.0, 0.0, include_fading=False
        )
        assert no_fading == pytest.approx(channel.mean_rss_dbm(TX, RX, 0.0, 0.0, 0.0))

    def test_link_state_created_lazily(self):
        channel = make_channel()
        assert channel.active_links == 0
        channel.rss_dbm("l1", 0.0, TX, RX, 0.0, 0.0, 0.0)
        assert channel.active_links == 1
        channel.rss_dbm("l1", 0.1, TX, RX, 0.0, 0.0, 0.0)
        assert channel.active_links == 1

    def test_custom_pathloss_model(self):
        model = CloseInPathLoss(60e9, exponent=3.0)
        channel = Channel(
            ChannelConfig.deterministic(), RngRegistry(1), pathloss_model=model
        )
        assert channel.pathloss is model

    def test_rotation_advances_shadowing_distance(self):
        """Heading change alone must advance the shadowing process."""
        channel = make_channel(ChannelConfig(shadowing_sigma_db=3.0,
                                             rician_k_db=None,
                                             blockage=BlockageConfig.disabled()),
                               seed=3)
        state = channel.link_state("l")
        rss_series = []
        for k in range(50):
            pose = Pose(Vec3(10.0, 0.0), heading=0.3 * k)
            rss_series.append(
                channel.rss_dbm("l", 0.02 * k, TX, pose, 0.0, 0.0, 0.0)
            )
        # Shadowing evolves: not all values identical.
        assert len(set(round(r, 6) for r in rss_series)) > 1
        assert state.traveled_m(Pose(Vec3(10.0, 0.0), heading=15.0)) > 0.0


class TestConfigValidation:
    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            ChannelConfig(frequency_hz=0.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            ChannelConfig(shadowing_sigma_db=-1.0)

    def test_deterministic_profile(self):
        config = ChannelConfig.deterministic()
        assert config.shadowing_sigma_db == 0.0
        assert config.rician_k_db is None
        assert config.blockage.rate_per_s == 0.0
