"""Tests for the ablation sweep runners (small trial counts)."""

import pytest

from repro.experiments.ablations import (
    summarize_sweep,
    sweep_adapt_threshold,
    sweep_codebook_beamwidth,
    sweep_handover_margin,
    sweep_loss_threshold,
)


class TestHandoverMarginSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_handover_margin(
            margins_db=(0.0, 6.0), n_trials=4, base_seed=7000
        )

    def test_arms_labeled(self, sweep):
        assert set(sweep) == {"T=0dB", "T=6dB"}

    def test_trials_counted(self, sweep):
        for trials in sweep.values():
            assert len(trials) == 4

    def test_summary_rows(self, sweep):
        rows = summarize_sweep(sweep)
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row["completion_rate"] <= 1.0


class TestAdaptThresholdSweep:
    def test_runs(self):
        sweep = sweep_adapt_threshold(
            thresholds_db=(3.0,), n_trials=3, base_seed=7100
        )
        assert set(sweep) == {"adapt=3dB"}
        rows = summarize_sweep(sweep)
        assert rows[0]["trials"] == 3


class TestCodebookSweep:
    def test_all_kinds(self):
        sweep = sweep_codebook_beamwidth(n_trials=3, base_seed=7200)
        assert set(sweep) == {"narrow", "wide", "omni"}

    def test_narrow_beats_omni(self):
        sweep = sweep_codebook_beamwidth(n_trials=4, base_seed=7300)
        summary = {row["label"]: row for row in summarize_sweep(sweep)}
        assert (
            summary["narrow"]["completion_rate"]
            >= summary["omni"]["completion_rate"]
        )


class TestLossThresholdSweep:
    def test_runs(self):
        sweep = sweep_loss_threshold(
            thresholds_db=(10.0,), n_trials=3, base_seed=7400
        )
        assert set(sweep) == {"loss=10dB"}


class TestSummaryShape:
    def test_empty_completed_arm(self):
        # Omni arm often completes nothing; summary must not crash.
        sweep = sweep_codebook_beamwidth(n_trials=2, base_seed=7500)
        rows = summarize_sweep(sweep)
        for row in rows:
            if row["completion_rate"] == 0.0:
                assert row["mean_completion_s"] is None
