"""Tests for analysis statistics helpers."""

import pytest

from repro.analysis.stats import (
    cdf_at,
    empirical_cdf,
    mean_confidence_interval,
    success_rate,
    summarize,
    wilson_interval,
)


class TestEmpiricalCdf:
    def test_sorted_output(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert xs == [1.0, 2.0, 3.0]
        assert ps == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_last_probability_is_one(self):
        _, ps = empirical_cdf([5.0, 1.0, 9.0, 2.0])
        assert ps[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_cdf_at(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(values, 2.5) == 0.5
        assert cdf_at(values, 0.0) == 0.0
        assert cdf_at(values, 10.0) == 1.0


class TestSummarize:
    def test_empty(self):
        assert summarize([]) == {"count": 0}

    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary["count"] == 5
        assert summary["mean"] == 3.0
        assert summary["p50"] == 3.0
        assert summary["min"] == 1.0
        assert summary["max"] == 5.0

    def test_percentiles_ordered(self):
        summary = summarize(list(range(100)))
        assert summary["p10"] <= summary["p50"] <= summary["p90"]


class TestConfidenceIntervals:
    def test_mean_ci_contains_mean(self):
        mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0])
        assert low <= mean <= high

    def test_single_sample_degenerate(self):
        mean, low, high = mean_confidence_interval([5.0])
        assert mean == low == high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_narrower_with_more_samples(self):
        small = mean_confidence_interval([1.0, 2.0, 3.0] * 2)
        large = mean_confidence_interval([1.0, 2.0, 3.0] * 50)
        assert (large[2] - large[1]) < (small[2] - small[1])


class TestProportions:
    def test_success_rate(self):
        assert success_rate(3, 4) == 0.75

    def test_success_rate_validation(self):
        with pytest.raises(ValueError):
            success_rate(1, 0)
        with pytest.raises(ValueError):
            success_rate(5, 4)

    def test_wilson_contains_point(self):
        low, high = wilson_interval(8, 10)
        assert low <= 0.8 <= high

    def test_wilson_bounded(self):
        low, high = wilson_interval(10, 10)
        assert 0.0 <= low <= high <= 1.0

    def test_wilson_sane_at_zero(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0
        assert high > 0.0
