"""Tests for analysis statistics helpers."""

import pytest

from repro.analysis.stats import (
    cdf_at,
    empirical_cdf,
    mean_confidence_interval,
    success_rate,
    summarize,
    wilson_interval,
)


class TestEmpiricalCdf:
    def test_sorted_output(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert xs == [1.0, 2.0, 3.0]
        assert ps == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_last_probability_is_one(self):
        _, ps = empirical_cdf([5.0, 1.0, 9.0, 2.0])
        assert ps[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_cdf_at(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(values, 2.5) == 0.5
        assert cdf_at(values, 0.0) == 0.0
        assert cdf_at(values, 10.0) == 1.0


class TestSummarize:
    def test_empty(self):
        assert summarize([]) == {"count": 0}

    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary["count"] == 5
        assert summary["mean"] == 3.0
        assert summary["p50"] == 3.0
        assert summary["min"] == 1.0
        assert summary["max"] == 5.0

    def test_percentiles_ordered(self):
        summary = summarize(list(range(100)))
        assert summary["p10"] <= summary["p50"] <= summary["p90"]


class TestVectorizedInputs:
    """The CDF/summary helpers accept numpy arrays and stay exact."""

    def test_empirical_cdf_accepts_arrays(self):
        import numpy as np

        xs, ps = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert xs == [1.0, 2.0, 3.0]
        assert ps == [1 / 3, 2 / 3, 1.0]
        assert isinstance(xs, list) and isinstance(ps, list)

    def test_cdf_at_accepts_arrays(self):
        import numpy as np

        assert cdf_at(np.arange(10.0), 4.5) == 0.5

    def test_summarize_accepts_arrays(self):
        import numpy as np

        assert summarize(np.array([1.0, 2.0, 3.0])) == summarize([1.0, 2.0, 3.0])

    def test_quantiles_match_list_reference(self):
        import numpy as np

        from repro.util.numerics import quantile

        rng = np.random.default_rng(3)
        values = rng.normal(size=997)
        summary = summarize(values)
        ordered = sorted(values.tolist())
        for key, q in (("p10", 0.10), ("p50", 0.50), ("p90", 0.90)):
            assert summary[key] == quantile(ordered, q)

    def test_population_scale_sample(self):
        import numpy as np

        rng = np.random.default_rng(7)
        values = rng.exponential(size=200_000)
        xs, ps = empirical_cdf(values)
        assert len(xs) == 200_000
        assert ps[-1] == 1.0
        assert 0.0 < cdf_at(values, 1.0) < 1.0
        summary = summarize(values)
        assert summary["count"] == 200_000
        assert summary["p10"] <= summary["p50"] <= summary["p90"]

    def test_rejects_multidimensional(self):
        import numpy as np

        with pytest.raises(ValueError):
            summarize(np.zeros((3, 3)))


class TestConfidenceIntervals:
    def test_mean_ci_contains_mean(self):
        mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0])
        assert low <= mean <= high

    def test_single_sample_degenerate(self):
        mean, low, high = mean_confidence_interval([5.0])
        assert mean == low == high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_narrower_with_more_samples(self):
        small = mean_confidence_interval([1.0, 2.0, 3.0] * 2)
        large = mean_confidence_interval([1.0, 2.0, 3.0] * 50)
        assert (large[2] - large[1]) < (small[2] - small[1])


class TestProportions:
    def test_success_rate(self):
        assert success_rate(3, 4) == 0.75

    def test_success_rate_validation(self):
        with pytest.raises(ValueError):
            success_rate(1, 0)
        with pytest.raises(ValueError):
            success_rate(5, 4)

    def test_wilson_contains_point(self):
        low, high = wilson_interval(8, 10)
        assert low <= 0.8 <= high

    def test_wilson_bounded(self):
        low, high = wilson_interval(10, 10)
        assert 0.0 <= low <= high <= 1.0

    def test_wilson_sane_at_zero(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0
        assert high > 0.0
