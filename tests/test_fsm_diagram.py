"""Tests for the Fig. 2b diagram module."""

import pytest

from repro.core.events import Fig2bEdge
from repro.core.fsm_diagram import (
    FIG2B_GUARDS,
    FIG2B_STATES,
    FIG2B_TOPOLOGY,
    edges,
    render_ascii,
    render_dot,
    validate_topology,
)


class TestTopology:
    def test_validates_clean(self):
        validate_topology()

    def test_every_enum_edge_present(self):
        assert {e.value for e in Fig2bEdge} == set(FIG2B_TOPOLOGY)

    def test_edges_helper(self):
        assert edges() == sorted(Fig2bEdge, key=lambda e: e.value)

    def test_all_states_referenced(self):
        referenced = set()
        for src, dst in FIG2B_TOPOLOGY.values():
            referenced.add(src)
            referenced.add(dst)
        assert referenced == set(FIG2B_STATES)

    def test_paper_semantics(self):
        """Spot-check the figure: E leaves N-RBA (handover), H self-loops."""
        assert FIG2B_TOPOLOGY["E"][0] == "N-RBA"
        assert FIG2B_TOPOLOGY["H"] == ("N-RBA", "N-RBA")
        assert FIG2B_TOPOLOGY["A"] == ("EO", "EO")
        assert FIG2B_TOPOLOGY["G"] == ("S-RBA", "CABM")


class TestRendering:
    def test_dot_contains_all_states_and_edges(self):
        dot = render_dot()
        for state in FIG2B_STATES:
            assert f'"{state}"' in dot
        for label in FIG2B_TOPOLOGY:
            assert f'label="{label}"' in dot

    def test_dot_guards(self):
        dot = render_dot(include_guards=True)
        assert "handover trigger" in dot

    def test_dot_is_valid_shape(self):
        dot = render_dot()
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_ascii_lists_all_edges(self):
        text = render_ascii()
        for label, guard in FIG2B_GUARDS.items():
            assert f"[{label}]" in text
            assert guard in text
