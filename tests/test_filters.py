"""Unit tests for protocol measurement filters."""

import pytest

from repro.measure.filters import DropDetector, HysteresisTrigger


class TestDropDetector:
    def test_requires_rearm(self):
        detector = DropDetector(3.0)
        with pytest.raises(RuntimeError):
            detector.update(-60.0)
        with pytest.raises(RuntimeError):
            detector.drop_db()

    def test_no_drop_below_threshold(self):
        detector = DropDetector(3.0, alpha=1.0)
        detector.rearm(-60.0)
        assert not detector.update(-62.0)

    def test_drop_detected(self):
        detector = DropDetector(3.0, alpha=1.0)
        detector.rearm(-60.0)
        assert detector.update(-64.0)

    def test_exact_threshold_not_a_drop(self):
        detector = DropDetector(3.0, alpha=1.0)
        detector.rearm(-60.0)
        assert not detector.update(-63.0)

    def test_smoothing_delays_detection(self):
        detector = DropDetector(3.0, alpha=0.3)
        detector.rearm(-60.0)
        # A single outlier is absorbed by the filter.
        assert not detector.update(-70.0)
        # Persistent degradation eventually crosses.
        crossed = False
        for _ in range(10):
            crossed = detector.update(-70.0)
        assert crossed

    def test_reference_ratchets_up(self):
        detector = DropDetector(3.0, alpha=1.0)
        detector.rearm(-60.0)
        detector.update(-55.0)  # beam improved
        assert detector.reference_dbm == pytest.approx(-55.0)
        # Falling back to the original selection level is now a drop.
        assert detector.update(-59.0)

    def test_drop_db_value(self):
        detector = DropDetector(3.0, alpha=1.0)
        detector.rearm(-60.0)
        detector.update(-65.0)
        assert detector.drop_db() == pytest.approx(5.0)

    def test_rearm_resets_filter(self):
        detector = DropDetector(3.0, alpha=1.0)
        detector.rearm(-60.0)
        detector.update(-70.0)
        detector.rearm(-58.0)
        assert detector.reference_dbm == -58.0
        assert not detector.update(-59.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            DropDetector(0.0)


class TestHysteresisTrigger:
    def test_asserts_above_enter(self):
        trigger = HysteresisTrigger(3.0, 1.5)
        assert not trigger.update(2.9)
        assert trigger.update(3.1)

    def test_stays_asserted_between_thresholds(self):
        trigger = HysteresisTrigger(3.0, 1.5)
        trigger.update(4.0)
        assert trigger.update(2.0)  # between exit and enter: holds

    def test_clears_below_exit(self):
        trigger = HysteresisTrigger(3.0, 1.5)
        trigger.update(4.0)
        assert not trigger.update(1.0)

    def test_no_oscillation_at_enter_threshold(self):
        trigger = HysteresisTrigger(3.0, 1.5)
        states = [trigger.update(m) for m in (3.1, 2.9, 3.1, 2.9)]
        assert states == [True, True, True, True]

    def test_reset(self):
        trigger = HysteresisTrigger(3.0, 1.5)
        trigger.update(5.0)
        trigger.reset()
        assert not trigger.asserted

    def test_equal_thresholds_allowed(self):
        trigger = HysteresisTrigger(3.0, 3.0)
        assert trigger.update(3.1)
        assert not trigger.update(2.9)

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            HysteresisTrigger(1.0, 2.0)
