"""Tests for ASCII table rendering."""

import pytest

from repro.analysis.tables import format_cdf_series, format_table


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["name", "value"], [["alpha", 1.5], ["beta", 2]])
        assert "name" in text
        assert "alpha" in text
        assert "1.500" in text
        assert "2" in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_alignment(self):
        text = format_table(["col"], [["short"], ["much longer cell"]])
        lines = [l for l in text.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1  # all rows same width

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_no_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatCdf:
    def test_downsamples(self):
        xs = [float(i) for i in range(100)]
        ps = [(i + 1) / 100 for i in range(100)]
        text = format_cdf_series("walk", xs, ps, points=5)
        lines = text.splitlines()
        assert lines[0] == "CDF walk:"
        assert 5 <= len(lines) - 1 <= 8

    def test_includes_last_point(self):
        xs = [1.0, 2.0, 3.0]
        ps = [1 / 3, 2 / 3, 1.0]
        text = format_cdf_series("x", xs, ps)
        assert "p=1.00" in text

    def test_validates_lengths(self):
        with pytest.raises(ValueError):
            format_cdf_series("x", [1.0], [0.5, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            format_cdf_series("x", [], [])
