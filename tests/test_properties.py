"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighbor_tracker import spiral_order
from repro.geometry.angles import (
    angular_distance,
    signed_angle_delta,
    wrap_to_pi,
    wrap_to_two_pi,
)
from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.measure.filters import DropDetector, HysteresisTrigger
from repro.phy.antenna import GaussianBeamPattern
from repro.phy.codebook import Codebook
from repro.phy.pathloss import CloseInPathLoss
from repro.util.numerics import Ewma, RunningStats, clamp, quantile
from repro.util.units import db_to_linear, linear_to_db

angles = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)
finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestAngleProperties:
    @given(angles)
    def test_wrap_to_pi_range(self, angle):
        wrapped = wrap_to_pi(angle)
        assert -math.pi < wrapped <= math.pi + 1e-12

    @given(angles)
    def test_wrap_to_two_pi_range(self, angle):
        wrapped = wrap_to_two_pi(angle)
        assert 0.0 <= wrapped < 2 * math.pi + 1e-12

    @given(angles)
    def test_wrap_idempotent(self, angle):
        once = wrap_to_pi(angle)
        assert wrap_to_pi(once) == once

    @given(angles)
    def test_wrap_preserves_direction(self, angle):
        wrapped = wrap_to_pi(angle)
        assert math.sin(wrapped) == math.sin(angle) or abs(
            math.sin(wrapped) - math.sin(angle)
        ) < 1e-9

    @given(angles, angles)
    def test_angular_distance_symmetric_bounded(self, a, b):
        d = angular_distance(a, b)
        assert 0.0 <= d <= math.pi + 1e-12
        # Symmetric up to fmod rounding at large magnitudes.
        assert abs(d - angular_distance(b, a)) < 1e-9

    @given(angles, angles)
    def test_delta_recovers_target(self, target, source):
        delta = signed_angle_delta(target, source)
        assert angular_distance(source + delta, target) < 1e-9

    @given(angles, angles, angles)
    def test_triangle_inequality(self, a, b, c):
        assert angular_distance(a, c) <= (
            angular_distance(a, b) + angular_distance(b, c) + 1e-9
        )


class TestPoseProperties:
    @given(angles, angles)
    def test_frame_roundtrip(self, heading, azimuth):
        pose = Pose(Vec3(0, 0), heading=wrap_to_pi(heading))
        there = pose.world_to_body(azimuth)
        back = pose.body_to_world(there)
        assert angular_distance(back, azimuth) < 1e-9


class TestUnitsProperties:
    @given(st.floats(-200.0, 200.0, allow_nan=False))
    def test_db_roundtrip(self, db):
        assert abs(linear_to_db(db_to_linear(db)) - db) < 1e-6

    @given(st.floats(-50.0, 50.0), st.floats(-50.0, 50.0))
    def test_db_addition_is_linear_multiplication(self, a, b):
        product = db_to_linear(a) * db_to_linear(b)
        assert abs(linear_to_db(product) - (a + b)) < 1e-6


class TestNumericsProperties:
    @given(finite, finite, finite)
    def test_clamp_in_bounds(self, value, a, b):
        low, high = min(a, b), max(a, b)
        result = clamp(value, low, high)
        assert low <= result <= high

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
           st.floats(0.0, 1.0))
    def test_quantile_within_range(self, values, q):
        ordered = sorted(values)
        result = quantile(ordered, q)
        # Interpolation may round a hair outside the hull; allow one ulp
        # of slack relative to the value magnitude.
        slack = 1e-12 * max(1.0, abs(ordered[0]), abs(ordered[-1]))
        assert ordered[0] - slack <= result <= ordered[-1] + slack

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50))
    def test_running_stats_bounds(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.min <= stats.mean <= stats.max
        assert stats.variance >= 0.0

    @given(st.lists(st.floats(-100.0, 100.0), min_size=1, max_size=40),
           st.floats(0.01, 1.0))
    def test_ewma_stays_in_sample_hull(self, samples, alpha):
        filt = Ewma(alpha)
        for sample in samples:
            value = filt.update(sample)
        assert min(samples) - 1e-9 <= value <= max(samples) + 1e-9


class TestCodebookProperties:
    @given(st.sampled_from([15.0, 20.0, 30.0, 45.0, 60.0, 90.0]), angles)
    def test_best_beam_within_half_spacing(self, beamwidth, azimuth):
        codebook = Codebook.uniform_azimuth(beamwidth)
        best = codebook.best_beam_towards(azimuth)
        spacing = 2 * math.pi / len(codebook)
        assert angular_distance(best.boresight_rad, azimuth) <= spacing / 2 + 1e-9

    @given(st.sampled_from([18, 6, 4, 2]), st.integers(0, 17), st.integers(0, 17))
    def test_hop_distance_metric(self, n_beams, a, b):
        codebook = Codebook.uniform_azimuth(360.0 / n_beams)
        a %= len(codebook)
        b %= len(codebook)
        d = codebook.hop_distance(a, b)
        assert d == codebook.hop_distance(b, a)
        assert 0 <= d <= len(codebook) // 2
        assert (d == 0) == (a == b)

    @given(st.integers(2, 40), st.integers(0, 39))
    def test_spiral_order_is_permutation(self, n, center):
        center %= n
        order = spiral_order(center, n)
        assert sorted(order) == list(range(n))
        assert order[0] == center


class TestAntennaProperties:
    @given(st.floats(5.0, 180.0), angles)
    def test_gain_never_exceeds_peak(self, beamwidth_deg, offset):
        beam = GaussianBeamPattern(math.radians(beamwidth_deg))
        assert beam.gain_dbi(offset) <= beam.peak_gain_dbi + 1e-9

    @given(st.floats(5.0, 180.0), st.floats(0.0, math.pi))
    def test_gain_symmetric(self, beamwidth_deg, offset):
        beam = GaussianBeamPattern(math.radians(beamwidth_deg))
        # Symmetric up to fmod rounding in the angle wrap.
        assert abs(beam.gain_dbi(offset) - beam.gain_dbi(-offset)) < 1e-9


class TestPathlossProperties:
    @given(st.floats(1.0, 500.0), st.floats(1.0, 500.0),
           st.floats(1.5, 4.0))
    def test_monotone_in_distance(self, d1, d2, exponent):
        model = CloseInPathLoss(60e9, exponent=exponent)
        near, far = min(d1, d2), max(d1, d2)
        assert model.path_loss_db(near) <= model.path_loss_db(far) + 1e-9


class TestFilterProperties:
    @given(st.lists(st.floats(-90.0, -30.0), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_drop_detector_never_fires_within_threshold(self, samples):
        """Samples all within 3 dB of the reference never trigger."""
        detector = DropDetector(3.0, alpha=1.0)
        detector.rearm(-60.0)
        for sample in samples:
            bounded = clamp(sample, -62.9, -57.1)
            fired = detector.update(bounded)
            if detector.reference_dbm == -60.0:
                assert not fired

    @given(st.lists(st.floats(-10.0, 10.0), min_size=1, max_size=50))
    def test_hysteresis_state_consistent(self, margins):
        trigger = HysteresisTrigger(3.0, 1.5)
        for margin in margins:
            state = trigger.update(margin)
            if margin > 3.0:
                assert state
            if margin < 1.5:
                assert not state
