"""Unit tests for SSB/RACH frame timing."""

import pytest

from repro.phy.frame import FrameConfig, RachConfig, SsbSchedule


class TestFrameConfig:
    def test_defaults(self):
        config = FrameConfig()
        assert config.ssb_period_s == 0.020

    def test_burst_duration(self):
        config = FrameConfig(ssb_dwell_s=125e-6)
        assert config.burst_duration_s(18) == pytest.approx(18 * 125e-6)

    def test_burst_duration_capped(self):
        config = FrameConfig(max_ssb_per_burst=64)
        assert config.burst_duration_s(100) == config.burst_duration_s(64)

    def test_worst_case_search_reproduces_paper_figure(self):
        """64 rx beams x 20 ms = the 1.28 s the paper's intro quotes."""
        assert FrameConfig().worst_case_search_s(64) == pytest.approx(1.28)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FrameConfig(ssb_period_s=0.0)
        with pytest.raises(ValueError):
            FrameConfig(max_ssb_per_burst=0)
        with pytest.raises(ValueError):
            FrameConfig().worst_case_search_s(0)


class TestSsbSchedule:
    def test_burst_starts(self):
        schedule = SsbSchedule(FrameConfig(), 8, phase_s=0.005)
        assert schedule.burst_start(0) == 0.005
        assert schedule.burst_start(3) == pytest.approx(0.065)

    def test_next_burst_start(self):
        schedule = SsbSchedule(FrameConfig(), 8, phase_s=0.005)
        assert schedule.next_burst_start(0.0) == 0.005
        assert schedule.next_burst_start(0.005) == 0.005
        assert schedule.next_burst_start(0.006) == pytest.approx(0.025)

    def test_burst_index_at(self):
        schedule = SsbSchedule(FrameConfig(), 8)
        assert schedule.burst_index_at(0.0) == 0
        assert schedule.burst_index_at(0.019) == 0
        assert schedule.burst_index_at(0.020) == 1
        assert schedule.burst_index_at(-0.001) == -1

    def test_ssb_time_within_burst(self):
        schedule = SsbSchedule(FrameConfig(ssb_dwell_s=100e-6), 8)
        assert schedule.ssb_time(1, 3) == pytest.approx(0.020 + 3 * 100e-6)

    def test_ssb_time_rejects_bad_beam(self):
        schedule = SsbSchedule(FrameConfig(), 8)
        with pytest.raises(ValueError):
            schedule.ssb_time(0, 8)

    def test_beams_in_burst(self):
        assert SsbSchedule(FrameConfig(), 4).beams_in_burst() == [0, 1, 2, 3]

    def test_rejects_too_many_beams(self):
        with pytest.raises(ValueError):
            SsbSchedule(FrameConfig(max_ssb_per_burst=16), 17)

    def test_rejects_bad_phase(self):
        with pytest.raises(ValueError):
            SsbSchedule(FrameConfig(), 4, phase_s=0.020)


class TestRachConfig:
    def test_next_occasion_grid(self):
        config = RachConfig(occasion_period_s=0.020, occasion_offset_s=0.010)
        assert config.next_occasion(0.0) == pytest.approx(0.010)
        assert config.next_occasion(0.010) == pytest.approx(0.010)
        assert config.next_occasion(0.0101) == pytest.approx(0.030)
        assert config.next_occasion(1.0) == pytest.approx(1.010)

    def test_minimum_completion(self):
        config = RachConfig(
            response_delay_s=0.003, msg3_delay_s=0.002, msg4_delay_s=0.003
        )
        assert config.minimum_completion_s() == pytest.approx(0.008)

    def test_rejects_offset_outside_period(self):
        with pytest.raises(ValueError):
            RachConfig(occasion_period_s=0.02, occasion_offset_s=0.02)

    def test_rejects_response_delay_beyond_window(self):
        with pytest.raises(ValueError):
            RachConfig(response_delay_s=0.02, response_window_s=0.01)

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RachConfig(max_attempts=0)
