"""Tests for the random-waypoint mobility model."""

import numpy as np
import pytest

from repro.geometry.vectors import Vec3
from repro.mobility.random_waypoint import RandomWaypoint

AREA = (0.0, 0.0, 30.0, 20.0)


def make(seed=1, **kwargs):
    kwargs.setdefault("speed_mps", 1.4)
    return RandomWaypoint(AREA, rng=np.random.default_rng(seed), **kwargs)


class TestRandomWaypoint:
    def test_stays_in_area(self):
        model = make()
        for t in np.linspace(0.0, model.total_time_s, 300):
            position = model.position_at(float(t))
            assert AREA[0] - 1e-9 <= position.x <= AREA[2] + 1e-9
            assert AREA[1] - 1e-9 <= position.y <= AREA[3] + 1e-9

    def test_speed_respected(self):
        model = make()
        measured = model.average_speed_mps(0.0, min(30.0, model.total_time_s),
                                           steps=300)
        assert measured == pytest.approx(1.4, rel=0.05)

    def test_pure_function_of_time(self):
        model = make(seed=5)
        a = model.pose_at(7.3)
        model.pose_at(50.0)
        assert model.pose_at(7.3) == a

    def test_deterministic_per_seed(self):
        a = make(seed=9)
        b = make(seed=9)
        for t in (0.0, 5.0, 20.0):
            assert a.pose_at(t) == b.pose_at(t)

    def test_seeds_differ(self):
        assert make(seed=1).position_at(10.0) != make(seed=2).position_at(10.0)

    def test_horizon_covered(self):
        model = make(horizon_s=60.0)
        assert model.total_time_s >= 60.0

    def test_explicit_start(self):
        model = make(start=Vec3(15.0, 10.0))
        assert model.position_at(0.0) == Vec3(15.0, 10.0)

    def test_parks_at_end(self):
        model = make(horizon_s=10.0)
        end = model.position_at(model.total_time_s)
        later = model.position_at(model.total_time_s + 100.0)
        assert end == later

    def test_validates_area(self):
        with pytest.raises(ValueError):
            RandomWaypoint((0, 0, 0, 10), 1.0, np.random.default_rng(1))

    def test_validates_speed(self):
        with pytest.raises(ValueError):
            RandomWaypoint(AREA, 0.0, np.random.default_rng(1))

    def test_validates_horizon(self):
        with pytest.raises(ValueError):
            RandomWaypoint(AREA, 1.0, np.random.default_rng(1), horizon_s=0.0)
