"""Unit tests for the deployment wiring."""

import pytest

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.base import StaticPose
from repro.net.base_station import BaseStation
from repro.net.deployment import Deployment, DeploymentConfig
from repro.net.mobile import Mobile
from repro.phy.channel import ChannelConfig
from repro.phy.codebook import Codebook


def make_deployment():
    deployment = Deployment(
        DeploymentConfig(master_seed=1, channel=ChannelConfig.deterministic())
    )
    deployment.add_station(
        BaseStation(
            "cellA",
            Pose(Vec3(0.0, 10.0)),
            Codebook.uniform_azimuth(30.0),
            tx_power_dbm=10.0,
            ssb_phase_s=0.0,
        )
    )
    deployment.add_station(
        BaseStation(
            "cellB",
            Pose(Vec3(20.0, 10.0)),
            Codebook.uniform_azimuth(30.0),
            tx_power_dbm=10.0,
            ssb_phase_s=0.005,
        )
    )
    mobile = deployment.add_mobile(
        Mobile("ue0", StaticPose(Pose(Vec3(10.0, 0.0))),
               Codebook.uniform_azimuth(20.0))
    )
    return deployment, mobile


class CountingListener:
    def __init__(self):
        self.offers = []

    def choose_rx_beam(self, cell_id, now_s):
        self.offers.append((cell_id, now_s))
        return 0

    def on_measurement(self, measurement):
        pass


class TestTopology:
    def test_duplicate_station_rejected(self):
        deployment, _ = make_deployment()
        with pytest.raises(ValueError):
            deployment.add_station(
                BaseStation("cellA", Pose(Vec3(1, 1)),
                            Codebook.uniform_azimuth(30.0))
            )

    def test_duplicate_mobile_rejected(self):
        deployment, _ = make_deployment()
        with pytest.raises(ValueError):
            deployment.add_mobile(
                Mobile("ue0", StaticPose(Pose(Vec3(0, 0))), Codebook.omni())
            )

    def test_lookup(self):
        deployment, mobile = make_deployment()
        assert deployment.station("cellA").cell_id == "cellA"
        assert deployment.mobile("ue0") is mobile
        with pytest.raises(KeyError):
            deployment.station("nope")
        with pytest.raises(KeyError):
            deployment.mobile("nope")

    def test_add_after_start_rejected(self):
        deployment, _ = make_deployment()
        deployment.start()
        with pytest.raises(RuntimeError):
            deployment.add_station(
                BaseStation("cellZ", Pose(Vec3(1, 1)),
                            Codebook.uniform_azimuth(30.0))
            )

    def test_double_start_rejected(self):
        deployment, _ = make_deployment()
        deployment.start()
        with pytest.raises(RuntimeError):
            deployment.start()


class TestBurstDelivery:
    def test_bursts_fire_per_period(self):
        deployment, mobile = make_deployment()
        listener = CountingListener()
        mobile.attach_listener(listener)
        deployment.run(0.1)  # 5 periods of 20 ms
        # Both cells offer a burst every period (phases 0 and 5 ms).
        cell_a = [t for c, t in listener.offers if c == "cellA"]
        cell_b = [t for c, t in listener.offers if c == "cellB"]
        assert len(cell_a) == 6  # t = 0, 20, ..., 100 ms
        assert len(cell_b) == 5  # t = 5, 25, ..., 85 ms

    def test_staggered_phases_no_rf_conflict(self):
        deployment, mobile = make_deployment()
        listener = CountingListener()
        mobile.attach_listener(listener)
        deployment.run(0.2)
        assert mobile.bursts_skipped_busy == 0

    def test_burst_counters(self):
        deployment, mobile = make_deployment()
        mobile.attach_listener(CountingListener())
        deployment.run(0.1)
        assert deployment.metrics.counter("bursts.cellA") == 6
        assert deployment.metrics.counter("bursts.cellB") == 5

    def test_run_auto_starts(self):
        deployment, _ = make_deployment()
        deployment.run(0.05)
        assert deployment.sim.now == pytest.approx(0.05)

    def test_stop_halts_bursts(self):
        deployment, mobile = make_deployment()
        listener = CountingListener()
        mobile.attach_listener(listener)
        deployment.run(0.05)
        count = len(listener.offers)
        deployment.stop()
        # The simulator itself keeps running; no bursts are delivered
        # while the deployment is stopped.
        deployment.sim.run_until(deployment.sim.now + 0.1)
        assert len(listener.offers) == count

    def test_run_after_stop_rearms_bursts(self):
        # Regression: stop() used to leave _started=True, so a later
        # run() silently advanced time with zero bursts forever.
        deployment, mobile = make_deployment()
        listener = CountingListener()
        mobile.attach_listener(listener)
        deployment.run(0.05)
        count = len(listener.offers)
        assert count > 0
        deployment.stop()
        deployment.run(0.1)
        assert len(listener.offers) > count

    def test_stop_on_grid_boundary_does_not_refire_burst(self):
        # Regression: a stop()/run() cycle landing exactly on a
        # station's burst grid used to deliver that boundary burst a
        # second time (next_burst_start(now) is inclusive of now).
        deployment, mobile = make_deployment()
        listener = CountingListener()
        mobile.attach_listener(listener)
        deployment.run(0.04)  # cellA bursts at 0, 0.02, 0.04 delivered
        deployment.stop()
        deployment.run(0.02)  # now 0.06 — one more cellA burst
        times_a = [t for cell, t in listener.offers if cell == "cellA"]
        assert times_a == pytest.approx([0.0, 0.02, 0.04, 0.06])

        # An uninterrupted run sees the identical offer sequence.
        reference, ref_mobile = make_deployment()
        ref_listener = CountingListener()
        ref_mobile.attach_listener(ref_listener)
        reference.run(0.06)
        assert listener.offers == ref_listener.offers

    def test_stop_inside_measurement_callback_does_not_refire(self):
        # Regression: stopping the deployment from within a listener's
        # on_measurement (i.e. inside the burst task's own callback)
        # used to leave next_fire_s at the burst that JUST fired, so an
        # immediate restart delivered the same burst time twice.
        class StopOnceListener(CountingListener):
            def __init__(self, deployment):
                super().__init__()
                self.deployment = deployment
                self.stopped = False

            def on_measurement(self, measurement):
                if not self.stopped and measurement.time_s >= 0.04:
                    self.stopped = True
                    self.deployment.stop()

        deployment, mobile = make_deployment()
        listener = StopOnceListener(deployment)
        mobile.attach_listener(listener)
        deployment.run(0.04)  # stop() fires inside the 0.04 cellA burst
        assert listener.stopped
        count_a = deployment.metrics.counter("bursts.cellA")
        deployment.run(0.02)  # restart at now == 0.04
        # cellA grid points up to 0.06: one more burst, not a re-fired
        # duplicate of 0.04.
        assert deployment.metrics.counter("bursts.cellA") == count_a + 1

    def test_rearmed_bursts_keep_absolute_schedule(self):
        deployment, mobile = make_deployment()
        listener = CountingListener()
        mobile.attach_listener(listener)
        deployment.run(0.032)  # mid-period for both cells
        deployment.stop()
        listener.offers.clear()
        deployment.run(0.05)
        # cellA fires at k * 20 ms, cellB at 5 + k * 20 ms — the grid
        # established at the original start, not re-phased at re-arm.
        for cell_id, now_s in listener.offers:
            phase = 0.0 if cell_id == "cellA" else 0.005
            beats = (now_s - phase) / 0.02
            assert beats == pytest.approx(round(beats), abs=1e-9)
