"""Unit tests for the deployment wiring."""

import pytest

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.base import StaticPose
from repro.net.base_station import BaseStation
from repro.net.deployment import Deployment, DeploymentConfig
from repro.net.mobile import Mobile
from repro.phy.channel import ChannelConfig
from repro.phy.codebook import Codebook


def make_deployment():
    deployment = Deployment(
        DeploymentConfig(master_seed=1, channel=ChannelConfig.deterministic())
    )
    deployment.add_station(
        BaseStation(
            "cellA",
            Pose(Vec3(0.0, 10.0)),
            Codebook.uniform_azimuth(30.0),
            tx_power_dbm=10.0,
            ssb_phase_s=0.0,
        )
    )
    deployment.add_station(
        BaseStation(
            "cellB",
            Pose(Vec3(20.0, 10.0)),
            Codebook.uniform_azimuth(30.0),
            tx_power_dbm=10.0,
            ssb_phase_s=0.005,
        )
    )
    mobile = deployment.add_mobile(
        Mobile("ue0", StaticPose(Pose(Vec3(10.0, 0.0))),
               Codebook.uniform_azimuth(20.0))
    )
    return deployment, mobile


class CountingListener:
    def __init__(self):
        self.offers = []

    def choose_rx_beam(self, cell_id, now_s):
        self.offers.append((cell_id, now_s))
        return 0

    def on_measurement(self, measurement):
        pass


class TestTopology:
    def test_duplicate_station_rejected(self):
        deployment, _ = make_deployment()
        with pytest.raises(ValueError):
            deployment.add_station(
                BaseStation("cellA", Pose(Vec3(1, 1)),
                            Codebook.uniform_azimuth(30.0))
            )

    def test_duplicate_mobile_rejected(self):
        deployment, _ = make_deployment()
        with pytest.raises(ValueError):
            deployment.add_mobile(
                Mobile("ue0", StaticPose(Pose(Vec3(0, 0))), Codebook.omni())
            )

    def test_lookup(self):
        deployment, mobile = make_deployment()
        assert deployment.station("cellA").cell_id == "cellA"
        assert deployment.mobile("ue0") is mobile
        with pytest.raises(KeyError):
            deployment.station("nope")
        with pytest.raises(KeyError):
            deployment.mobile("nope")

    def test_add_after_start_rejected(self):
        deployment, _ = make_deployment()
        deployment.start()
        with pytest.raises(RuntimeError):
            deployment.add_station(
                BaseStation("cellZ", Pose(Vec3(1, 1)),
                            Codebook.uniform_azimuth(30.0))
            )

    def test_double_start_rejected(self):
        deployment, _ = make_deployment()
        deployment.start()
        with pytest.raises(RuntimeError):
            deployment.start()


class TestBurstDelivery:
    def test_bursts_fire_per_period(self):
        deployment, mobile = make_deployment()
        listener = CountingListener()
        mobile.attach_listener(listener)
        deployment.run(0.1)  # 5 periods of 20 ms
        # Both cells offer a burst every period (phases 0 and 5 ms).
        cell_a = [t for c, t in listener.offers if c == "cellA"]
        cell_b = [t for c, t in listener.offers if c == "cellB"]
        assert len(cell_a) == 6  # t = 0, 20, ..., 100 ms
        assert len(cell_b) == 5  # t = 5, 25, ..., 85 ms

    def test_staggered_phases_no_rf_conflict(self):
        deployment, mobile = make_deployment()
        listener = CountingListener()
        mobile.attach_listener(listener)
        deployment.run(0.2)
        assert mobile.bursts_skipped_busy == 0

    def test_burst_counters(self):
        deployment, mobile = make_deployment()
        mobile.attach_listener(CountingListener())
        deployment.run(0.1)
        assert deployment.metrics.counter("bursts.cellA") == 6
        assert deployment.metrics.counter("bursts.cellB") == 5

    def test_run_auto_starts(self):
        deployment, _ = make_deployment()
        deployment.run(0.05)
        assert deployment.sim.now == pytest.approx(0.05)

    def test_stop_halts_bursts(self):
        deployment, mobile = make_deployment()
        listener = CountingListener()
        mobile.attach_listener(listener)
        deployment.run(0.05)
        count = len(listener.offers)
        deployment.stop()
        deployment.run(0.1)
        assert len(listener.offers) == count
