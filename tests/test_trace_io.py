"""Tests for trace persistence (JSONL / CSV)."""

import json

import pytest

from repro.sim.trace import TraceRecorder
from repro.sim.trace_io import (
    dump_csv,
    dump_jsonl,
    load_jsonl,
    recorder_from_jsonl,
)


@pytest.fixture
def recorder():
    trace = TraceRecorder()
    trace.emit(0.1, "fsm.neighbor", "ue0", edge="B")
    trace.emit(0.2, "rach.msg1", "ue0", result="heard", attempt=1)
    trace.emit(0.3, "handover.complete", "ue0", outcome="soft",
               interruption_s=0.018)
    return trace


class TestJsonl:
    def test_roundtrip(self, recorder, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = dump_jsonl(recorder.events, path)
        assert written == 3
        loaded = load_jsonl(path)
        assert loaded == recorder.events

    def test_recorder_from_file(self, recorder, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_jsonl(recorder.events, path)
        restored = recorder_from_jsonl(path)
        assert restored.count(category="rach") == 1
        assert restored.last(category="handover.complete").data["outcome"] == "soft"

    def test_blank_lines_skipped(self, recorder, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_jsonl(recorder.events, path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(load_jsonl(path)) == 3

    def test_malformed_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1.0, "category": "x", "node": "n"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_jsonl(path)

    def test_missing_field_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 1.0}\n')
        with pytest.raises(ValueError, match=":1:"):
            load_jsonl(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_jsonl(path) == []


class TestCsv:
    def test_header_and_rows(self, recorder, tmp_path):
        path = tmp_path / "trace.csv"
        written = dump_csv(recorder.events, path)
        assert written == 3
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,category,node,data"
        assert len(lines) == 4

    def test_data_column_is_json(self, recorder, tmp_path):
        path = tmp_path / "trace.csv"
        dump_csv(recorder.events, path)
        last_line = path.read_text().strip().splitlines()[-1]
        payload = last_line.split(",", 3)[3].strip('"').replace('""', '"')
        assert json.loads(payload)["outcome"] == "soft"
