"""Tests for the experiment scenario builders."""

import math

import pytest

from repro.experiments.scenarios import (
    SCENARIO_NAMES,
    STATION_POSITIONS,
    build_cell_edge_deployment,
    make_mobile_codebook,
    make_trajectory,
    scenario_duration_s,
)
from repro.util.units import mph_to_mps


class TestCodebooks:
    def test_kinds(self):
        assert len(make_mobile_codebook("narrow")) == 18
        assert len(make_mobile_codebook("wide")) == 6
        assert len(make_mobile_codebook("omni")) == 1

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_mobile_codebook("laser")


class TestTrajectories:
    def test_walk_speed(self):
        walk = make_trajectory("walk")
        assert walk.average_speed_mps(0.0, 5.0, steps=200) == pytest.approx(
            1.4, rel=0.05
        )

    def test_rotation_rate(self):
        rotation = make_trajectory("rotation")
        # One full 120 deg/s second: heading advances ~120 degrees
        # (modulo tremor).
        delta = rotation.heading_at(1.0) - rotation.heading_at(0.0)
        assert math.degrees(abs(delta)) == pytest.approx(120, abs=5)

    def test_vehicular_speed(self):
        vehicle = make_trajectory("vehicular")
        assert vehicle.average_speed_mps(0.0, 2.0, steps=100) == pytest.approx(
            mph_to_mps(20.0), rel=0.02
        )

    def test_start_x_override(self):
        walk = make_trajectory("walk", start_x=3.0)
        assert walk.position_at(0.0).x == pytest.approx(3.0, abs=0.1)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_trajectory("teleport")

    def test_durations_positive(self):
        for scenario in SCENARIO_NAMES:
            assert scenario_duration_s(scenario) > 0


class TestDeployment:
    def test_three_cells_default(self):
        deployment, mobile = build_cell_edge_deployment(1)
        assert {s.cell_id for s in deployment.stations} == set(STATION_POSITIONS)
        assert mobile.mobile_id == "ue0"

    def test_two_cell_variant(self):
        deployment, _ = build_cell_edge_deployment(1, n_cells=2)
        assert len(deployment.stations) == 2

    def test_n_cells_validated(self):
        with pytest.raises(ValueError):
            build_cell_edge_deployment(1, n_cells=1)
        with pytest.raises(ValueError):
            build_cell_edge_deployment(1, n_cells=9)

    def test_phases_staggered(self):
        deployment, _ = build_cell_edge_deployment(1)
        phases = sorted(s.schedule.phase_s for s in deployment.stations)
        gaps = [b - a for a, b in zip(phases, phases[1:])]
        burst = deployment.stations[0].schedule.burst_duration_s()
        assert all(gap > burst for gap in gaps)

    def test_cell_edge_geometry(self):
        """The mobile operates ~10-15 m from the nearest stations."""
        deployment, mobile = build_cell_edge_deployment(1, scenario="walk")
        pose = mobile.pose_at(0.0)
        distances = sorted(
            pose.distance_to(s.pose.position) for s in deployment.stations
        )
        assert 8.0 <= distances[0] <= 16.0

    def test_seed_controls_channel(self):
        a, _ = build_cell_edge_deployment(1)
        b, _ = build_cell_edge_deployment(2)
        assert a.config.master_seed != b.config.master_seed
