"""Tests for ``repro.lint``: rules, waivers, baselines, and the CLI.

The per-rule cases lint the fixture files under ``tests/data/lint/``
through :meth:`LintEngine.lint_source` with a synthetic module key, so
one fixture exercises both the in-scope (``repro/net/*``) and
out-of-scope behaviour of a rule.  The mutation tests at the bottom are
the acceptance check: seeding a wall-clock read into the real
``net/deployment.py`` and a typo'd stream key into the real
``net/link_engine.py`` must each produce exactly one finding with the
right rule ID, module, and line.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    LINT_FORMAT,
    LintEngine,
    LintError,
    apply_baseline,
    load_baseline,
    module_key,
    parse_waivers,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "data" / "lint"
SRC = Path(__file__).resolve().parents[1] / "src"

#: Module key the positive fixtures are linted under: inside every
#: rule's scope, outside every allowlist.
LIB_KEY = "repro/net/example.py"


def lint_fixture(name, key=LIB_KEY):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return LintEngine().lint_source(source, key)


def rules_of(findings):
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------- keys
class TestModuleKey:
    def test_src_relative(self):
        assert module_key("src/repro/net/deployment.py") == (
            "repro/net/deployment.py"
        )

    def test_absolute(self):
        assert module_key("/ci/work/repo/src/repro/sim/rng.py") == (
            "repro/sim/rng.py"
        )

    def test_tests_tree(self):
        assert module_key("/tmp/copy/tests/test_fleet.py") == (
            "tests/test_fleet.py"
        )

    def test_unanchored_falls_back_to_filename(self):
        assert module_key("/tmp/pytest-0/scratch.py") == "scratch.py"


# --------------------------------------------------------------- rules
class TestRules:
    def test_det001_positive(self):
        findings = lint_fixture("det001_bad.py")
        assert rules_of(findings) == ["DET001", "DET001"]
        assert "time.time" in findings[0].message

    def test_det001_negative(self):
        assert lint_fixture("det001_ok.py") == []

    def test_det001_allowlisted_modules(self):
        # The same reads are the *business* of bench/progress/tests code.
        assert lint_fixture("det001_bad.py", "repro/bench/suites.py") == []
        assert lint_fixture("det001_bad.py", "repro/net/progress.py") == []
        assert lint_fixture("det001_bad.py", "tests/test_x.py") == []

    def test_det002_positive(self):
        findings = lint_fixture("det002_bad.py")
        assert rules_of(findings) == ["DET002", "DET002", "DET002"]
        messages = " ".join(finding.message for finding in findings)
        assert "stdlib random" in messages
        assert "default_rng" in messages

    def test_det002_negative(self):
        assert lint_fixture("det002_ok.py") == []

    def test_det002_seeding_site_allows_default_rng(self):
        # Declared seeding sites may call default_rng; the global-state
        # random module and legacy numpy API stay banned even there.
        findings = lint_fixture("det002_bad.py", "tests/test_x.py")
        assert rules_of(findings) == ["DET002", "DET002"]
        assert not any("default_rng" in f.message for f in findings)

    def test_det003_positive(self):
        findings = lint_fixture("det003_bad.py")
        assert rules_of(findings) == ["DET003", "DET003"]
        assert "sort_keys" in findings[0].message
        assert "sorted" in findings[1].message

    def test_det003_negative(self):
        assert lint_fixture("det003_ok.py") == []

    def test_det004_positive(self):
        findings = lint_fixture("det004_bad.py")
        assert rules_of(findings) == ["DET004"] * 4
        messages = " ".join(finding.message for finding in findings)
        assert "REPRO_TURBO" in messages
        assert "switch_value" in messages

    def test_det004_negative(self):
        assert lint_fixture("det004_ok.py") == []

    def test_det004_undeclared_name_flagged_even_in_tests(self):
        # monkeypatch.setenv of a misspelled switch would silently select
        # the default path — the declared-name check has no allowlist.
        source = 'monkeypatch.setenv("REPRO_BRUST_PATH", "scalar")\n'
        findings = LintEngine().lint_source(source, "tests/test_x.py")
        assert rules_of(findings) == ["DET004"]
        assert "REPRO_BRUST_PATH" in findings[0].message

    def test_det005_positive(self):
        findings = lint_fixture("det005_bad.py")
        assert rules_of(findings) == ["DET005", "DET005"]
        assert "shadwoing/cell-0" in findings[0].message
        assert "uplnk" in findings[1].message

    def test_det005_negative(self):
        assert lint_fixture("det005_ok.py") == []

    def test_det005_tests_out_of_scope(self):
        # Tests mint scratch stream names deliberately.
        assert lint_fixture("det005_bad.py", "tests/test_x.py") == []

    def test_det006_positive(self):
        findings = lint_fixture("det006_bad.py")
        assert rules_of(findings) == ["DET006"] * 4
        messages = " ".join(finding.message for finding in findings)
        assert "CACHE" in messages
        assert "HISTORY" in messages
        assert "append" in messages
        assert "tally" in messages

    def test_det006_negative(self):
        assert lint_fixture("det006_ok.py") == []

    def test_det006_scoped_to_simulation_packages(self):
        assert lint_fixture("det006_bad.py", "repro/obs/hub.py") == []


# ------------------------------------------------------------- waivers
class TestWaivers:
    SOURCE = "import time\nvalue = time.time()\n"

    def test_parse(self):
        waivers = parse_waivers(
            ["x = 1  # repro: lint-waive[DET001, DET005]: legacy"]
        )
        assert len(waivers) == 1
        assert waivers[0].rules == ("DET001", "DET005")
        assert waivers[0].justification == "legacy"
        assert not waivers[0].standalone

    def test_justified_same_line_waiver_applies(self):
        source = (
            "import time\n"
            "value = time.time()  # repro: lint-waive[DET001]: fixture\n"
        )
        assert LintEngine().lint_source(source, LIB_KEY) == []

    def test_justified_standalone_waiver_covers_next_line(self):
        source = (
            "import time\n"
            "# repro: lint-waive[DET001]: fixture clock\n"
            "value = time.time()\n"
        )
        assert LintEngine().lint_source(source, LIB_KEY) == []

    def test_unjustified_waiver_is_itself_a_finding(self):
        source = (
            "import time\n"
            "value = time.time()  # repro: lint-waive[DET001]\n"
        )
        findings = LintEngine().lint_source(source, LIB_KEY)
        assert sorted(rules_of(findings)) == ["DET001", "LINT100"]

    def test_waiver_for_another_rule_does_not_apply(self):
        source = (
            "import time\n"
            "value = time.time()  # repro: lint-waive[DET005]: wrong rule\n"
        )
        findings = LintEngine().lint_source(source, LIB_KEY)
        assert rules_of(findings) == ["DET001"]


# ------------------------------------------------------------ baseline
class TestBaseline:
    SOURCE = (
        "import json\n"
        "def f(a):\n"
        "    print(json.dumps(a))\n"
        "    print(json.dumps(a))\n"
    )

    def test_round_trip_silences_grandfathered_findings(self, tmp_path):
        findings = LintEngine().lint_source(self.SOURCE, "tests/test_x.py")
        assert rules_of(findings) == ["DET003", "DET003"]
        path = tmp_path / "base.json"
        write_baseline(findings, path)
        assert apply_baseline(findings, load_baseline(path)) == []

    def test_counts_are_per_occurrence(self, tmp_path):
        # Two identical offending lines share a baseline key with
        # count 2; dropping the count to 1 re-exposes one finding.
        findings = LintEngine().lint_source(self.SOURCE, "tests/test_x.py")
        path = tmp_path / "base.json"
        write_baseline(findings, path)
        counts = load_baseline(path)
        assert list(counts.values()) == [2]
        key = next(iter(counts))
        counts[key] = 1
        assert len(apply_baseline(findings, counts)) == 1

    def test_keys_survive_line_moves(self, tmp_path):
        findings = LintEngine().lint_source(self.SOURCE, "tests/test_x.py")
        path = tmp_path / "base.json"
        write_baseline(findings, path)
        shifted = LintEngine().lint_source(
            "# a new comment above\n" + self.SOURCE, "tests/test_x.py"
        )
        assert apply_baseline(shifted, load_baseline(path)) == []

    def test_malformed_baseline_is_lint_error(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(LintError, match="malformed baseline"):
            load_baseline(path)
        path.write_text('{"entries": [{"rule": "X"}]}', encoding="utf-8")
        with pytest.raises(LintError, match="rule/path/text"):
            load_baseline(path)


# ----------------------------------------------------------------- CLI
@pytest.fixture()
def lint_tree(tmp_path):
    """A scratch tree with one clean and one offending module."""
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    bad = tmp_path / "mod.py"
    bad.write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n",
        encoding="utf-8",
    )
    return tmp_path


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n", encoding="utf-8")
        assert main(["lint", str(clean)]) == 0
        assert "clean: 1 file(s), 0 findings" in capsys.readouterr().out

    def test_findings_exit_one_with_location(self, lint_tree, capsys):
        assert main(["lint", str(lint_tree)]) == 1
        out = capsys.readouterr().out
        assert "mod.py:5:12: DET001" in out
        assert "1 finding(s) in 2 file(s)" in out

    def test_json_schema(self, lint_tree, capsys):
        assert main(["lint", str(lint_tree), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == LINT_FORMAT
        assert payload["checked_files"] == 2
        assert payload["counts"] == {"DET001": 1}
        (finding,) = payload["findings"]
        assert {"rule", "path", "line", "col", "message"} <= set(finding)
        assert finding["rule"] == "DET001"
        assert finding["line"] == 5

    def test_nonexistent_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing")]) == 2
        err = capsys.readouterr().err
        assert "no such file or directory" in err
        assert "Traceback" not in err

    def test_malformed_baseline_exits_two(self, lint_tree, capsys):
        broken = lint_tree / "base.json"
        broken.write_text("{not json", encoding="utf-8")
        assert main(
            ["lint", str(lint_tree / "mod.py"), "--baseline", str(broken)]
        ) == 2
        assert "malformed baseline" in capsys.readouterr().err

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n", encoding="utf-8")
        assert main(["lint", str(bad)]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_write_then_apply_baseline(self, lint_tree, capsys):
        base = lint_tree / "base.json"
        assert main(
            ["lint", str(lint_tree), "--write-baseline", str(base)]
        ) == 0
        assert "1 grandfathered finding(s)" in capsys.readouterr().out
        assert main(["lint", str(lint_tree), "--baseline", str(base)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_fixture_data_is_skipped_in_directory_walks(self, capsys):
        # tests/data/lint is full of deliberate violations; the tests/
        # gate must never pick them up.
        tests_dir = Path(__file__).parent
        assert main(
            ["lint", str(tests_dir), "--baseline",
             str(tests_dir.parent / "lint-baseline.json")]
        ) == 0


# ------------------------------------------------- shipped-tree gates
class TestShippedTree:
    def test_src_is_clean(self):
        engine = LintEngine()
        checked, findings = engine.lint_paths([SRC])
        assert checked > 50
        assert findings == []

    def test_no_unjustified_waivers_anywhere(self):
        engine = LintEngine()
        repo = SRC.parent
        for path in engine.collect_files([SRC, repo / "tests"]):
            if SRC / "repro" / "lint" in path.parents:
                continue  # documents the waiver syntax with examples
            waivers = parse_waivers(
                path.read_text(encoding="utf-8").splitlines()
            )
            for waiver in waivers:
                assert waiver.justification, (
                    f"{path}:{waiver.line}: waiver without justification"
                )
                # src/ may only waive the judgment-call rules.
                if SRC in path.parents:
                    assert set(waiver.rules) <= {"DET005", "DET006"}, (
                        f"{path}:{waiver.line}: DET001-DET004 must be "
                        f"fixed, not waived"
                    )


# ----------------------------------------------------- mutation tests
class TestMutationDetection:
    """Seeded-violation acceptance checks against the real sources."""

    def test_wall_clock_seeded_into_deployment(self):
        source = (SRC / "repro" / "net" / "deployment.py").read_text(
            encoding="utf-8"
        )
        mutated = (
            source + "\n\nimport time\n\n\ndef _leak():\n"
            "    return time.time()\n"
        )
        findings = LintEngine().lint_source(
            mutated, "repro/net/deployment.py"
        )
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "DET001"
        assert finding.path == "repro/net/deployment.py"
        assert finding.line == len(mutated.splitlines())

    def test_stream_key_typo_seeded_into_link_engine(self):
        source = (SRC / "repro" / "net" / "link_engine.py").read_text(
            encoding="utf-8"
        )
        mutated = (
            source + "\n\ndef _leak(registry):\n"
            '    return registry.stream("shadwoing/cell-0")\n'
        )
        findings = LintEngine().lint_source(
            mutated, "repro/net/link_engine.py"
        )
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "DET005"
        assert finding.path == "repro/net/link_engine.py"
        assert finding.line == len(mutated.splitlines())
        assert "shadwoing/cell-0" in finding.message
