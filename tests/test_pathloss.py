"""Unit tests for path-loss models."""

import pytest

from repro.phy.pathloss import (
    CloseInPathLoss,
    DualSlopePathLoss,
    FreeSpacePathLoss,
    fspl_db,
)


class TestFspl:
    def test_60ghz_1m_reference(self):
        # The well-known 68 dB first-meter loss at 60 GHz.
        assert fspl_db(1.0, 60e9) == pytest.approx(68.0, abs=0.1)

    def test_inverse_square(self):
        assert fspl_db(20.0, 60e9) - fspl_db(10.0, 60e9) == pytest.approx(
            6.02, abs=0.01
        )

    def test_frequency_scaling(self):
        # Doubling frequency adds 6 dB.
        assert fspl_db(10.0, 120e9) - fspl_db(10.0, 60e9) == pytest.approx(
            6.02, abs=0.01
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            fspl_db(0.0, 60e9)
        with pytest.raises(ValueError):
            fspl_db(1.0, 0.0)


class TestFreeSpace:
    def test_matches_fspl(self):
        model = FreeSpacePathLoss(60e9)
        assert model.path_loss_db(10.0) == fspl_db(10.0, 60e9)


class TestCloseIn:
    def test_intercept_is_1m_fspl(self):
        model = CloseInPathLoss(60e9, exponent=2.1)
        assert model.intercept_db == pytest.approx(fspl_db(1.0, 60e9))
        assert model.path_loss_db(1.0) == pytest.approx(model.intercept_db)

    def test_exponent_slope(self):
        model = CloseInPathLoss(60e9, exponent=2.1)
        per_decade = model.path_loss_db(100.0) - model.path_loss_db(10.0)
        assert per_decade == pytest.approx(21.0)

    def test_exponent_two_equals_free_space(self):
        ci = CloseInPathLoss(60e9, exponent=2.0)
        fs = FreeSpacePathLoss(60e9)
        for d in (2.0, 10.0, 50.0):
            assert ci.path_loss_db(d) == pytest.approx(fs.path_loss_db(d))

    def test_clamps_below_reference(self):
        model = CloseInPathLoss(60e9)
        assert model.path_loss_db(0.1) == model.path_loss_db(1.0)

    def test_monotone_in_distance(self):
        model = CloseInPathLoss(60e9, exponent=3.2)
        distances = [1.0, 2.0, 5.0, 10.0, 30.0, 100.0]
        losses = [model.path_loss_db(d) for d in distances]
        assert losses == sorted(losses)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            CloseInPathLoss(60e9, exponent=0.0)


class TestDualSlope:
    def test_continuous_at_breakpoint(self):
        model = DualSlopePathLoss(breakpoint_m=15.0)
        just_below = model.path_loss_db(15.0 - 1e-9)
        just_above = model.path_loss_db(15.0 + 1e-9)
        assert just_below == pytest.approx(just_above, abs=0.001)

    def test_steeper_beyond_breakpoint(self):
        model = DualSlopePathLoss(
            near_exponent=2.0, far_exponent=4.0, breakpoint_m=15.0
        )
        near_slope = model.path_loss_db(10.0) - model.path_loss_db(5.0)
        far_slope = model.path_loss_db(60.0) - model.path_loss_db(30.0)
        assert far_slope > near_slope

    def test_rejects_tiny_breakpoint(self):
        with pytest.raises(ValueError):
            DualSlopePathLoss(breakpoint_m=0.5)
