"""Unit tests for repro.util.units."""

import math

import pytest

from repro.util import units


class TestDbConversions:
    def test_db_to_linear_zero(self):
        assert units.db_to_linear(0.0) == 1.0

    def test_db_to_linear_ten(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_db_to_linear_negative(self):
        assert units.db_to_linear(-10.0) == pytest.approx(0.1)

    def test_linear_to_db_roundtrip(self):
        for value in (0.001, 0.5, 1.0, 2.0, 1000.0):
            assert units.db_to_linear(units.linear_to_db(value)) == pytest.approx(
                value
            )

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)

    def test_three_db_is_factor_two(self):
        assert units.db_to_linear(3.0) == pytest.approx(2.0, rel=0.01)


class TestPowerConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_roundtrip(self):
        for dbm in (-100.0, -30.0, 0.0, 23.0):
            assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)

    def test_mw_to_dbm(self):
        assert units.mw_to_dbm(1.0) == pytest.approx(0.0)
        assert units.mw_to_dbm(100.0) == pytest.approx(20.0)

    def test_mw_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.mw_to_dbm(-5.0)


class TestThermalNoise:
    def test_one_hz_reference(self):
        assert units.thermal_noise_dbm(1.0) == pytest.approx(-174.0)

    def test_gigahertz_band(self):
        # -174 + 90 = -84 dBm over 1 GHz.
        assert units.thermal_noise_dbm(1e9) == pytest.approx(-84.0)

    def test_noise_figure_adds(self):
        base = units.thermal_noise_dbm(1e9)
        assert units.thermal_noise_dbm(1e9, noise_figure_db=8.0) == pytest.approx(
            base + 8.0
        )

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            units.thermal_noise_dbm(0.0)


class TestSpeedConversions:
    def test_paper_vehicular_speed(self):
        # The paper's 20 mph scenario.
        assert units.mph_to_mps(20.0) == pytest.approx(8.9408)

    def test_kmh(self):
        assert units.kmh_to_mps(36.0) == pytest.approx(10.0)

    def test_deg_per_s(self):
        # The paper's 120 deg/s rotation.
        assert units.deg_per_s_to_rad_per_s(120.0) == pytest.approx(
            2.0 * math.pi / 3.0
        )
