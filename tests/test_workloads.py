"""Tests for the workload generator and replay helpers."""

import pytest

from repro.core.beamsurfer import BeamSurfer
from repro.core.events import NeighborState
from repro.core.neighbor_tracker import NeighborTracker
from repro.experiments.workloads import (
    detection_duty_cycle,
    generate_rss_trace,
    replay_into,
    trace_to_measurements,
)
from repro.measure.report import RssMeasurement
from repro.phy.codebook import Codebook


class TestGenerate:
    def test_trace_length(self):
        trace = generate_rss_trace(duration_s=1.0, period_s=0.020, seed=3)
        assert len(trace) == 50

    def test_deterministic(self):
        a = generate_rss_trace(seed=9, duration_s=1.0)
        b = generate_rss_trace(seed=9, duration_s=1.0)
        assert a == b

    def test_best_policy_mostly_detects(self):
        trace = generate_rss_trace(
            rx_beam_policy="best", seed=3, duration_s=2.0
        )
        assert detection_duty_cycle(trace) > 0.8

    def test_fixed_beam_loses_signal_under_rotation(self):
        """A static beam under 120 deg/s rotation detects only while the
        beam happens to point at the cell."""
        trace = generate_rss_trace(
            scenario="rotation",
            rx_beam_policy="fixed",
            fixed_rx_beam=0,
            seed=3,
            duration_s=3.0,
        )
        duty = detection_duty_cycle(trace)
        assert duty < 0.6

    def test_distance_recorded(self):
        trace = generate_rss_trace(scenario="walk", seed=1, duration_s=1.0)
        assert all(p.distance_m > 1.0 for p in trace)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            generate_rss_trace(rx_beam_policy="psychic")

    def test_empty_duty_cycle_rejected(self):
        with pytest.raises(ValueError):
            detection_duty_cycle([])


class TestReplay:
    def test_trace_to_measurements(self):
        trace = generate_rss_trace(seed=3, duration_s=0.5)
        measurements = trace_to_measurements(trace, "cellB")
        assert len(measurements) == len(trace)
        assert all(m.cell_id == "cellB" for m in measurements)

    def test_replay_into_tracker(self):
        """A canned detection sequence drives N-A/R -> N-RBA."""
        tracker = NeighborTracker(
            Codebook.uniform_azimuth(20.0), ["cellB"], ewma_alpha=1.0
        )
        tracker.begin_search(0.0)
        beam = tracker.beam_for_burst("cellB")
        canned = [
            RssMeasurement(0.02, "cellB", beam, tx_beam=1,
                           rss_dbm=-60.0, snr_db=12.0),
            RssMeasurement(0.04, "cellB", beam, tx_beam=1,
                           rss_dbm=-61.0, snr_db=11.0),
        ]
        count = replay_into(canned, tracker.on_measurement)
        assert count == 2
        assert tracker.state is NeighborState.TRACKING

    def test_replay_into_beamsurfer(self):
        surfer = BeamSurfer(Codebook.uniform_azimuth(20.0), 5)
        canned = [
            RssMeasurement(0.00, "cellA", 5, tx_beam=0, rss_dbm=-60.0,
                           snr_db=12.0),
            RssMeasurement(0.02, "cellA", 5, tx_beam=0, rss_dbm=-60.5,
                           snr_db=11.5),
        ]
        replay_into(canned, surfer.on_serving_measurement)
        assert surfer.smoothed_rss_dbm is not None

    def test_replay_rejects_disorder(self):
        canned = [
            RssMeasurement(0.04, "cellB", 0),
            RssMeasurement(0.02, "cellB", 0),
        ]
        with pytest.raises(ValueError):
            replay_into(canned, lambda m, t: None)
