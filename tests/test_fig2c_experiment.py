"""Tests for the Fig. 2c experiment runner (handover completion CDF)."""

import pytest

from repro.experiments.fig2c import run_fig2c, run_tracking_trial
from repro.net.handover import HandoverOutcome


class TestTrackingTrial:
    def test_walk_completes(self):
        result = run_tracking_trial("walk", seed=3)
        assert result.completed
        assert result.completion_time_s > 0
        assert result.outcome in (HandoverOutcome.SOFT, HandoverOutcome.HARD)

    def test_deterministic_per_seed(self):
        a = run_tracking_trial("rotation", seed=4)
        b = run_tracking_trial("rotation", seed=4)
        assert a == b

    def test_tracking_time_bounded_by_completion(self):
        result = run_tracking_trial("walk", seed=3)
        assert result.tracking_time_s <= result.completion_time_s

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_tracking_trial("swimming", seed=1)


class TestFig2cAggregate:
    @pytest.fixture(scope="class")
    def results(self):
        return run_fig2c(n_trials=8, base_seed=950)

    def test_all_scenarios_present(self, results):
        assert set(results) == {"walk", "rotation", "vehicular"}

    def test_high_completion_rate(self, results):
        """Silent Tracker succeeds in all three mobility scenarios."""
        for scenario, data in results.items():
            assert data["completion_rate"] >= 0.75, scenario

    def test_mostly_soft(self, results):
        for scenario, data in results.items():
            assert data["soft_rate"] >= 0.5, scenario

    def test_times_in_paper_band(self, results):
        """Fig. 2c's x-axis spans ~0.4-1.8 s; our distribution must be
        of that order (sub-second to a few seconds, never minutes)."""
        for scenario, data in results.items():
            for t in data["completion_times_s"]:
                assert 0.05 < t < 5.0, (scenario, t)

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            run_fig2c(n_trials=0)
