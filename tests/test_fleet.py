"""The repro.fleet subsystem: specs, synthesis, runs, metrics, CLI."""

import json

import pytest

from repro.campaign.spec import SpecError, canonical_json
from repro.fleet import (
    FleetSpec,
    FleetTrialResult,
    UserProfile,
    build_fleet,
    load_fleet_artifact,
    run_fleet_trial,
    synthesize_users,
    write_fleet_artifact,
)
from repro.fleet.experiment import (
    FLEET_MIXES,
    fleet_campaign_spec,
    fleet_spec_for_cell,
    mix_names,
)


def small_spec(n_users=6, seed=3, duration_s=1.5, **kwargs):
    profiles = kwargs.pop(
        "profiles",
        (
            UserProfile("walkers", weight=0.7, scenario="walk",
                        start_jitter_s=0.3),
            UserProfile("drivers", weight=0.3, scenario="vehicular"),
        ),
    )
    return FleetSpec(
        "test-fleet", n_users=n_users, profiles=profiles, seed=seed,
        duration_s=duration_s, **kwargs
    )


class TestSpecValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(SpecError):
            UserProfile("p", scenario="warp-drive")

    def test_unknown_codebook_rejected(self):
        with pytest.raises(SpecError):
            UserProfile("p", codebook="laser")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SpecError):
            UserProfile("p", protocol="oracel")

    def test_negative_weight_rejected(self):
        with pytest.raises(SpecError):
            UserProfile("p", weight=0.0)

    def test_bad_spawn_interval_rejected(self):
        with pytest.raises(SpecError):
            UserProfile("p", spawn_x=(10.0, 4.0))

    def test_needs_users_and_profiles(self):
        with pytest.raises(SpecError):
            FleetSpec("f", n_users=0, profiles=(UserProfile("p"),))
        with pytest.raises(SpecError):
            FleetSpec("f", n_users=1, profiles=())

    def test_duplicate_profile_names_rejected(self):
        with pytest.raises(SpecError):
            FleetSpec(
                "f", n_users=1,
                profiles=(UserProfile("p"), UserProfile("p", weight=2.0)),
            )

    def test_roundtrip(self):
        spec = small_spec()
        again = FleetSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fleet_hash == spec.fleet_hash

    def test_save_load(self, tmp_path):
        from repro.fleet import load_spec

        spec = small_spec()
        path = tmp_path / "fleet.json"
        spec.save(path)
        assert load_spec(path) == spec


class TestHashing:
    def test_name_not_part_of_hash(self):
        a = small_spec()
        b = FleetSpec("other-name", n_users=a.n_users, profiles=a.profiles,
                      seed=a.seed, duration_s=a.duration_s)
        assert a.fleet_hash == b.fleet_hash

    def test_seed_changes_hash(self):
        assert small_spec(seed=3).fleet_hash != small_spec(seed=4).fleet_hash

    def test_population_changes_hash(self):
        assert (
            small_spec(n_users=6).fleet_hash != small_spec(n_users=7).fleet_hash
        )


class TestSynthesis:
    def test_deterministic(self):
        assert synthesize_users(small_spec()) == synthesize_users(small_spec())

    def test_user_count_and_ids(self):
        users = synthesize_users(small_spec(n_users=12))
        assert len(users) == 12
        assert [u.index for u in users] == list(range(12))
        assert len({u.user_id for u in users}) == 12

    def test_user_seeds_distinct(self):
        users = synthesize_users(small_spec(n_users=32))
        assert len({u.seed for u in users}) == 32

    def test_profiles_sampled_by_weight(self):
        spec = small_spec(n_users=400)
        users = synthesize_users(spec)
        walkers = sum(1 for u in users if u.profile == "walkers")
        assert 0.55 < walkers / len(users) < 0.85

    def test_spawn_region_respected(self):
        spec = FleetSpec(
            "f", n_users=50,
            profiles=(UserProfile("p", spawn_x=(8.0, 12.0)),), seed=1,
        )
        for user in synthesize_users(spec):
            assert 8.0 <= user.start_x <= 12.0

    def test_serving_cell_is_nearest(self):
        spec = FleetSpec(
            "f", n_users=40, profiles=(UserProfile("p", spawn_x=(0.0, 40.0)),),
            seed=2,
        )
        for user in synthesize_users(spec):
            if user.start_x < 10.0:
                assert user.serving_cell == "cellA"
            elif user.start_x > 30.0:
                assert user.serving_cell == "cellC"

    def test_jitter_within_bound(self):
        spec = FleetSpec(
            "f", n_users=30,
            profiles=(UserProfile("p", start_jitter_s=0.4),), seed=5,
        )
        offsets = [u.start_offset_s for u in synthesize_users(spec)]
        assert all(0.0 <= o <= 0.4 for o in offsets)
        assert any(o > 0.0 for o in offsets)

    def test_seed_changes_population(self):
        a = synthesize_users(small_spec(seed=3))
        b = synthesize_users(small_spec(seed=4))
        assert [u.start_x for u in a] != [u.start_x for u in b]


class TestBuildFleet:
    def test_population_materialized(self):
        run = build_fleet(small_spec())
        assert len(run.mobiles) == 6
        assert len(run.protocols) == 6
        assert len(run.deployment.mobiles) == 6

    def test_distinct_trajectories(self):
        run = build_fleet(small_spec(n_users=4))
        poses = {
            (m.pose_at(0.5).position.x, m.pose_at(0.5).position.y)
            for m in run.mobiles
        }
        assert len(poses) == 4


class TestRunFleetTrial:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fleet_trial(small_spec(n_users=8, duration_s=2.0))

    def test_one_result_per_user(self, result):
        assert len(result.users) == 8
        assert result.aggregates["totals"]["users"] == 8

    def test_population_measured(self, result):
        assert result.aggregates["totals"]["bursts_measured"] > 100
        assert all(u.bursts_measured > 0 for u in result.users)

    def test_summary_sections(self, result):
        summary = result.aggregates["summary"]
        for key in (
            "search_latency_s",
            "completion_time_s",
            "handover_rate_per_min",
            "ping_pong_rate_per_min",
            "outage_fraction",
        ):
            assert "count" in summary[key]
        assert summary["outage_fraction"]["count"] == 8

    def test_cdf_sections(self, result):
        cdf = result.aggregates["cdf"]["outage_fraction"]
        assert cdf is not None
        assert len(cdf["xs"]) == len(cdf["ps"]) == 8
        assert cdf["ps"][-1] == 1.0

    def test_payload_roundtrip(self, result):
        payload = json.loads(canonical_json(result.to_dict()))
        again = FleetTrialResult.from_dict(payload)
        assert canonical_json(again.to_dict()) == canonical_json(result.to_dict())

    def test_artifact_roundtrip(self, result, tmp_path):
        path = write_fleet_artifact(result, tmp_path / "fleet.json")
        again = load_fleet_artifact(path)
        assert canonical_json(again.to_dict()) == canonical_json(result.to_dict())


class TestExperimentKind:
    def test_registered(self):
        from repro.registry import EXPERIMENTS

        kind = EXPERIMENTS.get("fleet")
        assert kind.protocol_axis == "profile mix"
        assert set(kind.default_protocols) <= set(mix_names())

    def test_builtin_mixes_present(self):
        assert {"uniform", "mobility-blend", "codebook-split"} <= set(FLEET_MIXES)

    def test_unknown_mix_rejected(self):
        with pytest.raises(SpecError):
            fleet_spec_for_cell("rush-hour", scenario="walk", seed=0)

    def test_mix_uses_cell_scenario(self):
        spec = fleet_spec_for_cell("uniform", scenario="vehicular", seed=1)
        assert spec.profiles[0].scenario == "vehicular"

    def test_run_trial_envelope(self):
        from repro.api import run_trial

        result = run_trial(
            "fleet", scenario="walk", seed=2, arm="uniform",
            params={"n_users": 3, "duration_s": 1.0},
        )
        assert result.experiment == "fleet"
        assert isinstance(result.payload, FleetTrialResult)
        assert result.payload.aggregates["totals"]["users"] == 3

    def test_campaign_grid(self, tmp_path):
        from repro.campaign.runner import run_campaign

        spec = fleet_campaign_spec(
            n_users=3, scenarios=("walk",), mixes=("uniform",), seeds=2,
            duration_s=1.0,
        )
        result = run_campaign(spec, out_dir=tmp_path / "campaign")
        assert len(result.payloads) == 2
        trials = [trial for _, trial in result.trials_in_order()]
        assert all(t.aggregates["totals"]["users"] == 3 for t in trials)

    def test_campaign_summary_table(self):
        from repro.campaign.aggregate import summarize_campaign
        from repro.campaign.runner import run_campaign

        spec = fleet_campaign_spec(
            n_users=3, scenarios=("walk",), mixes=("uniform",), seeds=1,
            duration_s=1.0,
        )
        result = run_campaign(spec)
        headers, rows = summarize_campaign(spec, result.results_in_order())
        assert "users" in headers
        assert rows and rows[0][headers.index("users")] == 3


class TestFleetCli:
    def test_run_and_summarize(self, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "fleet.json"
        assert main([
            "fleet", "run", "--users", "4", "--duration", "1.0",
            "--seed", "9", "--out", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "4 users" in out
        assert artifact.exists()
        assert main(["fleet", "summarize", "--artifact", str(artifact)]) == 0
        assert "4 users" in capsys.readouterr().out

    def test_spec_file_run(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        small_spec(n_users=3, duration_s=1.0).save(spec_path)
        assert main(["fleet", "run", "--spec", str(spec_path)]) == 0
        assert "3 users" in capsys.readouterr().out

    def test_unknown_mix_exits_2(self, capsys):
        from repro.cli import main

        assert main(["fleet", "run", "--mix", "rush-hour"]) == 2
        assert "unknown fleet mix" in capsys.readouterr().err

    def test_missing_artifact_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        missing = str(tmp_path / "nope.json")
        assert main(["fleet", "summarize", "--artifact", missing]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["fleet", "run", "--spec", missing]) == 2
        assert "error:" in capsys.readouterr().err

    def test_not_a_fleet_artifact_exits_2(self, tmp_path, capsys):
        # Valid JSON that is not a fleet artifact must be an
        # operational error, not a KeyError traceback.
        from repro.cli import main

        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}", encoding="utf-8")
        assert main(["fleet", "summarize", "--artifact", str(bogus)]) == 2
        assert "not a fleet artifact" in capsys.readouterr().err
