"""The repro.fleet subsystem: specs, synthesis, runs, metrics, CLI."""

import json

import pytest

from repro.campaign.spec import SpecError, canonical_json
from repro.fleet import (
    FleetSpec,
    FleetTrialResult,
    UserProfile,
    build_fleet,
    load_fleet_artifact,
    run_fleet_trial,
    synthesize_users,
    write_fleet_artifact,
)
from repro.fleet.experiment import (
    FLEET_MIXES,
    fleet_campaign_spec,
    fleet_spec_for_cell,
    mix_names,
)


def small_spec(n_users=6, seed=3, duration_s=1.5, **kwargs):
    profiles = kwargs.pop(
        "profiles",
        (
            UserProfile("walkers", weight=0.7, scenario="walk",
                        start_jitter_s=0.3),
            UserProfile("drivers", weight=0.3, scenario="vehicular"),
        ),
    )
    return FleetSpec(
        "test-fleet", n_users=n_users, profiles=profiles, seed=seed,
        duration_s=duration_s, **kwargs
    )


class TestSpecValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(SpecError):
            UserProfile("p", scenario="warp-drive")

    def test_unknown_codebook_rejected(self):
        with pytest.raises(SpecError):
            UserProfile("p", codebook="laser")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SpecError):
            UserProfile("p", protocol="oracel")

    def test_negative_weight_rejected(self):
        with pytest.raises(SpecError):
            UserProfile("p", weight=0.0)

    def test_bad_spawn_interval_rejected(self):
        with pytest.raises(SpecError):
            UserProfile("p", spawn_x=(10.0, 4.0))

    def test_needs_users_and_profiles(self):
        with pytest.raises(SpecError):
            FleetSpec("f", n_users=0, profiles=(UserProfile("p"),))
        with pytest.raises(SpecError):
            FleetSpec("f", n_users=1, profiles=())

    def test_duplicate_profile_names_rejected(self):
        with pytest.raises(SpecError):
            FleetSpec(
                "f", n_users=1,
                profiles=(UserProfile("p"), UserProfile("p", weight=2.0)),
            )

    def test_roundtrip(self):
        spec = small_spec()
        again = FleetSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fleet_hash == spec.fleet_hash

    def test_save_load(self, tmp_path):
        from repro.fleet import load_spec

        spec = small_spec()
        path = tmp_path / "fleet.json"
        spec.save(path)
        assert load_spec(path) == spec


class TestHashing:
    def test_name_not_part_of_hash(self):
        a = small_spec()
        b = FleetSpec("other-name", n_users=a.n_users, profiles=a.profiles,
                      seed=a.seed, duration_s=a.duration_s)
        assert a.fleet_hash == b.fleet_hash

    def test_seed_changes_hash(self):
        assert small_spec(seed=3).fleet_hash != small_spec(seed=4).fleet_hash

    def test_population_changes_hash(self):
        assert (
            small_spec(n_users=6).fleet_hash != small_spec(n_users=7).fleet_hash
        )


class TestSynthesis:
    def test_deterministic(self):
        assert synthesize_users(small_spec()) == synthesize_users(small_spec())

    def test_user_count_and_ids(self):
        users = synthesize_users(small_spec(n_users=12))
        assert len(users) == 12
        assert [u.index for u in users] == list(range(12))
        assert len({u.user_id for u in users}) == 12

    def test_user_seeds_distinct(self):
        users = synthesize_users(small_spec(n_users=32))
        assert len({u.seed for u in users}) == 32

    def test_profiles_sampled_by_weight(self):
        spec = small_spec(n_users=400)
        users = synthesize_users(spec)
        walkers = sum(1 for u in users if u.profile == "walkers")
        assert 0.55 < walkers / len(users) < 0.85

    def test_spawn_region_respected(self):
        spec = FleetSpec(
            "f", n_users=50,
            profiles=(UserProfile("p", spawn_x=(8.0, 12.0)),), seed=1,
        )
        for user in synthesize_users(spec):
            assert 8.0 <= user.start_x <= 12.0

    def test_serving_cell_is_nearest(self):
        spec = FleetSpec(
            "f", n_users=40, profiles=(UserProfile("p", spawn_x=(0.0, 40.0)),),
            seed=2,
        )
        for user in synthesize_users(spec):
            if user.start_x < 10.0:
                assert user.serving_cell == "cellA"
            elif user.start_x > 30.0:
                assert user.serving_cell == "cellC"

    def test_jitter_within_bound(self):
        spec = FleetSpec(
            "f", n_users=30,
            profiles=(UserProfile("p", start_jitter_s=0.4),), seed=5,
        )
        offsets = [u.start_offset_s for u in synthesize_users(spec)]
        assert all(0.0 <= o <= 0.4 for o in offsets)
        assert any(o > 0.0 for o in offsets)

    def test_seed_changes_population(self):
        a = synthesize_users(small_spec(seed=3))
        b = synthesize_users(small_spec(seed=4))
        assert [u.start_x for u in a] != [u.start_x for u in b]


class TestBuildFleet:
    def test_population_materialized(self):
        run = build_fleet(small_spec())
        assert len(run.mobiles) == 6
        assert len(run.protocols) == 6
        assert len(run.deployment.mobiles) == 6

    def test_distinct_trajectories(self):
        run = build_fleet(small_spec(n_users=4))
        poses = {
            (m.pose_at(0.5).position.x, m.pose_at(0.5).position.y)
            for m in run.mobiles
        }
        assert len(poses) == 4


class TestRunFleetTrial:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fleet_trial(small_spec(n_users=8, duration_s=2.0))

    def test_one_result_per_user(self, result):
        assert len(result.users) == 8
        assert result.aggregates["totals"]["users"] == 8

    def test_population_measured(self, result):
        assert result.aggregates["totals"]["bursts_measured"] > 100
        assert all(u.bursts_measured > 0 for u in result.users)

    def test_summary_sections(self, result):
        summary = result.aggregates["summary"]
        for key in (
            "search_latency_s",
            "completion_time_s",
            "handover_rate_per_min",
            "ping_pong_rate_per_min",
            "outage_fraction",
        ):
            assert "count" in summary[key]
        assert summary["outage_fraction"]["count"] == 8

    def test_cdf_sections(self, result):
        cdf = result.aggregates["cdf"]["outage_fraction"]
        assert cdf is not None
        assert len(cdf["xs"]) == len(cdf["ps"]) == 8
        assert cdf["ps"][-1] == 1.0

    def test_payload_roundtrip(self, result):
        payload = json.loads(canonical_json(result.to_dict()))
        again = FleetTrialResult.from_dict(payload)
        assert canonical_json(again.to_dict()) == canonical_json(result.to_dict())

    def test_artifact_roundtrip(self, result, tmp_path):
        path = write_fleet_artifact(result, tmp_path / "fleet.json")
        again = load_fleet_artifact(path)
        assert canonical_json(again.to_dict()) == canonical_json(result.to_dict())


class TestExperimentKind:
    def test_registered(self):
        from repro.registry import EXPERIMENTS

        kind = EXPERIMENTS.get("fleet")
        assert kind.protocol_axis == "profile mix"
        assert set(kind.default_protocols) <= set(mix_names())

    def test_builtin_mixes_present(self):
        assert {"uniform", "mobility-blend", "codebook-split"} <= set(FLEET_MIXES)

    def test_unknown_mix_rejected(self):
        with pytest.raises(SpecError):
            fleet_spec_for_cell("rush-hour", scenario="walk", seed=0)

    def test_mix_uses_cell_scenario(self):
        spec = fleet_spec_for_cell("uniform", scenario="vehicular", seed=1)
        assert spec.profiles[0].scenario == "vehicular"

    def test_run_trial_envelope(self):
        from repro.api import run_trial

        result = run_trial(
            "fleet", scenario="walk", seed=2, arm="uniform",
            params={"n_users": 3, "duration_s": 1.0},
        )
        assert result.experiment == "fleet"
        assert isinstance(result.payload, FleetTrialResult)
        assert result.payload.aggregates["totals"]["users"] == 3

    def test_campaign_grid(self, tmp_path):
        from repro.campaign.runner import run_campaign

        spec = fleet_campaign_spec(
            n_users=3, scenarios=("walk",), mixes=("uniform",), seeds=2,
            duration_s=1.0,
        )
        result = run_campaign(spec, out_dir=tmp_path / "campaign")
        assert len(result.payloads) == 2
        trials = [trial for _, trial in result.trials_in_order()]
        assert all(t.aggregates["totals"]["users"] == 3 for t in trials)

    def test_campaign_summary_table(self):
        from repro.campaign.aggregate import summarize_campaign
        from repro.campaign.runner import run_campaign

        spec = fleet_campaign_spec(
            n_users=3, scenarios=("walk",), mixes=("uniform",), seeds=1,
            duration_s=1.0,
        )
        result = run_campaign(spec)
        headers, rows = summarize_campaign(spec, result.results_in_order())
        assert "users" in headers
        assert rows and rows[0][headers.index("users")] == 3


class TestFleetCli:
    def test_run_and_summarize(self, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "fleet.json"
        assert main([
            "fleet", "run", "--users", "4", "--duration", "1.0",
            "--seed", "9", "--out", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "4 users" in out
        assert artifact.exists()
        assert main(["fleet", "summarize", "--artifact", str(artifact)]) == 0
        assert "4 users" in capsys.readouterr().out

    def test_spec_file_run(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        small_spec(n_users=3, duration_s=1.0).save(spec_path)
        assert main(["fleet", "run", "--spec", str(spec_path)]) == 0
        assert "3 users" in capsys.readouterr().out

    def test_unknown_mix_exits_2(self, capsys):
        from repro.cli import main

        assert main(["fleet", "run", "--mix", "rush-hour"]) == 2
        assert "unknown fleet mix" in capsys.readouterr().err

    def test_missing_artifact_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        missing = str(tmp_path / "nope.json")
        assert main(["fleet", "summarize", "--artifact", missing]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["fleet", "run", "--spec", missing]) == 2
        assert "error:" in capsys.readouterr().err

    def test_not_a_fleet_artifact_exits_2(self, tmp_path, capsys):
        # Valid JSON that is not a fleet artifact must be an
        # operational error, not a KeyError traceback.
        from repro.cli import main

        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}", encoding="utf-8")
        assert main(["fleet", "summarize", "--artifact", str(bogus)]) == 2
        assert "not a fleet artifact" in capsys.readouterr().err


class TestShardPartition:
    def test_partition_covers_population_disjointly(self):
        from repro.fleet import partition_fleet

        spec = small_spec(n_users=24)
        shards = partition_fleet(spec, 5)
        seen = []
        for shard in shards:
            seen.extend(shard.user_indices())
        assert sorted(seen) == list(range(24))

    def test_assignment_is_order_independent(self):
        """Shard membership depends only on the user's derived seed."""
        from repro.fleet import partition_fleet
        from repro.fleet.spec import user_seed

        spec = small_spec(n_users=16)
        for shard in partition_fleet(spec, 4):
            for index in shard.user_indices():
                assert (
                    user_seed(spec.fleet_hash, index) % 4
                    == shard.shard_index
                )

    def test_shard_synthesis_matches_full_synthesis(self):
        from repro.fleet import partition_fleet

        spec = small_spec(n_users=12)
        full = {user.user_id: user for user in synthesize_users(spec)}
        for shard in partition_fleet(spec, 3):
            for user in shard.synthesize():
                assert user == full[user.user_id]

    def test_shard_hashes_distinct_and_stable(self):
        from repro.fleet import partition_fleet

        spec = small_spec()
        hashes = [s.shard_hash for s in partition_fleet(spec, 3)]
        assert len(set(hashes)) == 3
        assert hashes == [s.shard_hash for s in partition_fleet(spec, 3)]

    def test_invalid_shard_counts_rejected(self):
        from repro.fleet import partition_fleet

        spec = small_spec(n_users=4)
        with pytest.raises(SpecError):
            partition_fleet(spec, 0)
        with pytest.raises(SpecError):
            partition_fleet(spec, -1)
        with pytest.raises(SpecError):
            partition_fleet(spec, 5)

    def test_shard_round_trip(self):
        from repro.fleet import FleetShard, partition_fleet

        shard = partition_fleet(small_spec(), 2)[1]
        clone = FleetShard.from_dict(shard.to_dict())
        assert clone.shard_hash == shard.shard_hash
        assert clone.user_indices() == shard.user_indices()


class TestFleetAccumulator:
    def test_exact_aggregates_match_aggregate_users(self):
        from repro.fleet import FleetAccumulator, aggregate_users
        from repro.fleet.metrics import user_result
        from repro.fleet.runner import run_built_fleet

        spec = small_spec(n_users=5, duration_s=1.0)
        trial = run_fleet_trial(spec)
        accumulator = FleetAccumulator(spec.duration_s)
        accumulator.add_users(trial.users)
        assert accumulator.aggregates() == trial.aggregates

    def test_merge_matches_single_pass(self):
        from repro.fleet import FleetAccumulator

        spec = small_spec(n_users=8, duration_s=1.0)
        trial = run_fleet_trial(spec)
        whole = FleetAccumulator(spec.duration_s)
        whole.add_users(trial.users)
        left = FleetAccumulator(spec.duration_s)
        left.add_users(trial.users[:3])
        right = FleetAccumulator(spec.duration_s)
        right.add_users(trial.users[3:])
        left.merge(right)
        assert left.aggregates() == whole.aggregates()

    def test_streaming_marks_inexact_but_totals_match(self):
        from repro.fleet import FleetAccumulator

        spec = small_spec(n_users=8, duration_s=1.0)
        trial = run_fleet_trial(spec)
        bounded = FleetAccumulator(spec.duration_s, capacity=8)
        bounded.add_users(trial.users)
        aggregates = bounded.aggregates()
        assert aggregates["totals"] == trial.aggregates["totals"]
        for key, summary in aggregates["summary"].items():
            assert summary["count"] == trial.aggregates["summary"][key]["count"]

    def test_mismatched_merge_rejected(self):
        from repro.fleet import FleetAccumulator

        base = FleetAccumulator(2.0)
        with pytest.raises(SpecError):
            base.merge(FleetAccumulator(3.0))
        with pytest.raises(SpecError):
            base.merge(FleetAccumulator(2.0, capacity=16))


class TestShardStore:
    def test_initialize_refuses_different_sharding(self, tmp_path):
        from repro.campaign.store import StoreError
        from repro.fleet import FleetShardStore, partition_fleet

        spec = small_spec()
        shards = partition_fleet(spec, 2)
        hashes = {s.shard_index: s.shard_hash for s in shards}
        store = FleetShardStore(tmp_path)
        store.initialize(spec, 2, hashes, stream=False, capacity=None)
        # Same arithmetic is the resume path.
        store.initialize(spec, 2, hashes, stream=False, capacity=None)
        with pytest.raises(StoreError):
            store.initialize(spec, 2, hashes, stream=True, capacity=64)

    def test_completed_hashes_ignores_corrupt_and_sidecars(self, tmp_path):
        from repro.fleet import FleetShardStore

        store = FleetShardStore(tmp_path)
        store.write_shard("abc123", {"shard_hash": "abc123"})
        store.write_shard_telemetry("abc123", {"spans": {}})
        (tmp_path / "shards" / "broken.json").write_text("{nope")
        (tmp_path / "shards" / "wronghash.json").write_text(
            json.dumps({"shard_hash": "other"})
        )
        assert store.completed_hashes() == {"abc123"}


class TestShardedRunner:
    def test_failed_shard_raises_with_traceback(self, tmp_path, monkeypatch):
        from repro.fleet import FleetError, run_fleet_sharded
        from repro.fleet import runner as runner_mod

        def boom(shard, stream=False, capacity=None, progress=None):
            raise RuntimeError("shard exploded")

        monkeypatch.setattr(runner_mod, "run_shard", boom)
        with pytest.raises(FleetError) as excinfo:
            run_fleet_sharded(small_spec(), 2, out_dir=tmp_path)
        assert "shard exploded" in str(excinfo.value)
        assert len(excinfo.value.failures) == 2

    def test_invalid_workers_rejected(self):
        from repro.fleet import FleetError, run_fleet_sharded

        with pytest.raises(FleetError):
            run_fleet_sharded(small_spec(), 2, workers=0)

    def test_streaming_run_drops_users_and_artifact_is_canonical(
        self, tmp_path
    ):
        from repro.fleet import load_sharded_fleet, run_fleet_sharded

        spec = small_spec(n_users=6, duration_s=1.0)
        result = run_fleet_sharded(
            spec, 2, out_dir=tmp_path, stream=True, capacity=8
        )
        assert result.stream is True
        assert result.merged.users is None
        record = json.loads((tmp_path / "fleet.json").read_text())
        assert record["users"] is None
        assert record["aggregates"]["exact"] in (True, False)
        loaded = load_sharded_fleet(tmp_path)
        assert loaded.aggregates == result.merged.aggregates

    def test_load_sharded_fleet_incomplete_raises(self, tmp_path):
        from repro.campaign.store import StoreError
        from repro.fleet import load_sharded_fleet, run_fleet_sharded

        run_fleet_sharded(small_spec(), 3, out_dir=tmp_path)
        (tmp_path / "fleet.json").unlink()
        shard_files = sorted((tmp_path / "shards").glob("*.json"))
        shard_files[0].unlink()
        with pytest.raises(StoreError, match="incomplete"):
            load_sharded_fleet(tmp_path)

    def test_shard_progress_events_aggregate(self, tmp_path):
        from repro.fleet import run_fleet_sharded
        from repro.fleet.progress import FleetProgress

        class Recording(FleetProgress):
            def __init__(self):
                self.shards_done = []
                self.runs = []
                self.finished = None

            def on_run(self, sim_now_s, duration_s):
                self.runs.append(sim_now_s)

            def on_shard_done(self, done, total, elapsed_s):
                self.shards_done.append((done, total))

            def on_finish(self, users, elapsed_s):
                self.finished = users

        reporter = Recording()
        spec = small_spec(n_users=6, duration_s=1.0)
        run_fleet_sharded(spec, 3, out_dir=tmp_path, progress=reporter)
        assert reporter.shards_done == [(1, 3), (2, 3), (3, 3)]
        assert reporter.finished == spec.n_users
        assert reporter.runs  # run-phase events were aggregated


class TestShardedCli:
    def _flags(self):
        return ["fleet", "run", "--users", "6", "--duration", "1.0",
                "--quiet"]

    def test_shards_below_one_exits_2(self, capsys):
        from repro.cli import main

        assert main([*self._flags(), "--shards", "0"]) == 2
        assert "n_shards must be >= 1" in capsys.readouterr().err

    def test_shards_above_users_exits_2(self, capsys):
        from repro.cli import main

        assert main([*self._flags(), "--shards", "7"]) == 2
        assert "cannot split" in capsys.readouterr().err

    def test_workers_without_shards_exits_2(self, capsys):
        from repro.cli import main

        assert main([*self._flags(), "--workers", "2"]) == 2
        assert "--workers requires --shards" in capsys.readouterr().err

    def test_sharded_run_and_summarize_directory(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sharded"
        assert main([*self._flags(), "--shards", "2", "--telemetry",
                     "--out", str(out)]) == 0
        run_output = capsys.readouterr().out
        assert "6 users" in run_output
        assert "hottest telemetry spans" in run_output
        assert (out / "manifest.json").exists()
        assert (out / "fleet.json").exists()
        assert len(list((out / "shards").glob("*.telemetry.json"))) == 2
        assert main(["fleet", "summarize", "--artifact", str(out)]) == 0
        summary = capsys.readouterr().out
        assert "6 users" in summary
        # The per-shard sidecars fold into the summarize view.
        assert "hottest telemetry spans" in summary

    def test_obs_top_reads_shard_sidecars(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sharded"
        assert main([*self._flags(), "--shards", "2", "--telemetry",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["obs", "top", str(out)]) == 0
        assert "fleet.run" in capsys.readouterr().out
