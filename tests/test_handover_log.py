"""Unit tests for handover records and log."""

import pytest

from repro.net.handover import HandoverLog, HandoverOutcome, HandoverRecord


class TestRecord:
    def test_completion_time(self):
        record = HandoverRecord("ue0", "cellA", "cellB", trigger_s=1.0)
        assert record.completion_time_s is None
        record.complete_s = 1.4
        assert record.completion_time_s == pytest.approx(0.4)

    def test_is_soft(self):
        record = HandoverRecord("ue0", "cellA", "cellB", trigger_s=1.0)
        record.outcome = HandoverOutcome.SOFT
        assert record.is_soft
        record.outcome = HandoverOutcome.HARD
        assert not record.is_soft


class TestLog:
    def make_log(self):
        log = HandoverLog()
        soft = log.open_record("ue0", "cellA", "cellB", 1.0)
        soft.complete_s = 1.5
        soft.outcome = HandoverOutcome.SOFT
        hard = log.open_record("ue0", "cellB", "cellC", 5.0)
        hard.complete_s = 7.0
        hard.outcome = HandoverOutcome.HARD
        failed = log.open_record("ue0", "cellC", "cellA", 9.0)
        failed.outcome = HandoverOutcome.FAILED
        return log

    def test_counts(self):
        log = self.make_log()
        assert len(log) == 3
        assert log.soft_count == 1
        assert log.hard_count == 1
        assert log.failed_count == 1

    def test_completion_times(self):
        log = self.make_log()
        assert log.completion_times_s() == pytest.approx([0.5, 2.0])

    def test_soft_ratio(self):
        assert self.make_log().soft_ratio() == pytest.approx(1.0 / 3.0)

    def test_soft_ratio_empty_raises(self):
        log = HandoverLog()
        log.open_record("ue0", "a", "b", 0.0)  # unresolved
        with pytest.raises(ValueError):
            log.soft_ratio()

    def test_records_copy(self):
        log = self.make_log()
        records = log.records
        records.clear()
        assert len(log) == 3
