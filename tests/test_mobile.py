"""Unit tests for the mobile node."""

import math

import pytest

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.base import StaticPose
from repro.mobility.rotation import DeviceRotation
from repro.net.base_station import BaseStation
from repro.net.link_engine import LinkEngine
from repro.net.mobile import Mobile
from repro.phy.channel import Channel, ChannelConfig
from repro.phy.codebook import Codebook
from repro.sim.rng import RngRegistry


def make_mobile(trajectory=None, codebook=None):
    return Mobile(
        "ue0",
        trajectory or StaticPose(Pose(Vec3(10.0, 0.0))),
        codebook or Codebook.uniform_azimuth(20.0),
    )


def make_station(tx_power=10.0):
    return BaseStation(
        "cellA",
        Pose(Vec3(0.0, 10.0)),
        Codebook.uniform_azimuth(20.0),
        tx_power_dbm=tx_power,
    )


def make_links(seed=1):
    registry = RngRegistry(seed)
    return LinkEngine(Channel(ChannelConfig.deterministic(), registry), registry)


class RecordingListener:
    def __init__(self, beam=0):
        self.beam = beam
        self.measurements = []

    def choose_rx_beam(self, cell_id, now_s):
        return self.beam

    def on_measurement(self, measurement):
        self.measurements.append(measurement)


class DecliningListener:
    def choose_rx_beam(self, cell_id, now_s):
        return None

    def on_measurement(self, measurement):
        raise AssertionError("should never be called")


class TestGainFunction:
    def test_heading_rotates_gains(self):
        """A rotated device sees the same world target on a different beam."""
        mobile = make_mobile(
            trajectory=DeviceRotation(
                Vec3(10.0, 0.0), math.radians(90), tremor_amplitude_rad=0.0
            )
        )
        station = make_station()
        beam_at_0 = mobile.best_rx_beam_towards(station, 0.0)
        beam_at_1s = mobile.best_rx_beam_towards(station, 1.0)  # +90 deg
        hops = mobile.codebook.hop_distance(beam_at_0, beam_at_1s)
        # 90 degrees of rotation over a 20-degree codebook: ~4-5 hops.
        assert 3 <= hops <= 6

    def test_rx_gain_fn_peaks_on_best_beam(self):
        mobile = make_mobile()
        station = make_station()
        best = mobile.best_rx_beam_towards(station, 0.0)
        gain = mobile.rx_gain_fn(0.0)
        bearing = mobile.pose_at(0.0).bearing_to(station.pose.position)
        gains = [gain(i, bearing) for i in range(len(mobile.codebook))]
        assert gains[best] == max(gains)


class TestRadioArbitration:
    def test_busy_window(self):
        mobile = make_mobile()
        mobile.occupy_radio(1.0, 0.01)
        assert mobile.radio_busy(1.005)
        assert not mobile.radio_busy(1.011)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            make_mobile().occupy_radio(0.0, -1.0)

    def test_burst_skipped_when_busy(self):
        mobile = make_mobile()
        listener = RecordingListener()
        mobile.attach_listener(listener)
        station = make_station()
        links = make_links()
        mobile.occupy_radio(0.0, 1.0)
        result = mobile.deliver_burst(station, links, 0.5)
        assert result is None
        assert mobile.bursts_skipped_busy == 1
        assert listener.measurements == []

    def test_burst_declined_by_listener(self):
        mobile = make_mobile()
        mobile.attach_listener(DecliningListener())
        result = mobile.deliver_burst(make_station(), make_links(), 0.0)
        assert result is None
        assert mobile.bursts_declined == 1

    def test_burst_measured_and_delivered(self):
        mobile = make_mobile()
        station = make_station()
        best = mobile.best_rx_beam_towards(station, 0.0)
        listener = RecordingListener(beam=best)
        mobile.attach_listener(listener)
        result = mobile.deliver_burst(station, make_links(), 0.0)
        assert result is not None
        assert result.detected
        assert listener.measurements == [result]
        assert mobile.bursts_measured == 1

    def test_burst_occupies_radio(self):
        mobile = make_mobile()
        station = make_station()
        mobile.attach_listener(RecordingListener())
        mobile.deliver_burst(station, make_links(), 0.0)
        assert mobile.radio_busy(station.schedule.burst_duration_s() / 2)

    def test_no_listener_no_measurement(self):
        mobile = make_mobile()
        assert mobile.deliver_burst(make_station(), make_links(), 0.0) is None

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            Mobile("", StaticPose(Pose(Vec3(0, 0))), Codebook.omni())
