"""Tests for the hierarchical-search extension experiment."""

import pytest

from repro.experiments.hierarchical import (
    compare_search_strategies,
    run_hierarchical_trial,
)


class TestHierarchicalTrial:
    def test_trial_runs(self):
        result = run_hierarchical_trial(seed=3)
        assert result.dwells >= 1
        assert result.stage_reached in (1, 2)

    def test_success_implies_stage2(self):
        for seed in range(5):
            result = run_hierarchical_trial(seed=seed)
            if result.success:
                assert result.stage_reached == 2

    def test_deterministic(self):
        assert run_hierarchical_trial(seed=11) == run_hierarchical_trial(seed=11)


class TestComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_search_strategies(n_trials=10, base_seed=3100)

    def test_both_strategies_reported(self, results):
        assert set(results) == {"exhaustive", "hierarchical"}

    def test_exhaustive_success_high(self, results):
        assert results["exhaustive"]["success_rate"] >= 0.8

    def test_hierarchical_fewer_dwells_when_it_works(self, results):
        """Two-stage search is cheaper on successful trials."""
        hier = results["hierarchical"]["latency"]
        exhaustive = results["exhaustive"]["latency"]
        if hier["count"] >= 3 and exhaustive["count"] >= 3:
            assert hier["mean"] <= exhaustive["mean"] + 2.0

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            compare_search_strategies(n_trials=0)
