"""Unit tests for Rician small-scale fading."""

import numpy as np
import pytest

from repro.phy.fading import NoFading, RicianFading
from repro.util.units import db_to_linear


class TestRician:
    def test_unit_mean_power(self):
        """Fading is normalized: E[linear power] = 1 (0 dB)."""
        fading = RicianFading(10.0, np.random.default_rng(1))
        draws = fading.sample_db_array(40000)
        mean_power = np.mean([db_to_linear(d) for d in draws])
        assert mean_power == pytest.approx(1.0, rel=0.03)

    def test_higher_k_less_variance(self):
        strong_los = RicianFading(20.0, np.random.default_rng(2))
        weak_los = RicianFading(0.0, np.random.default_rng(2))
        assert np.std(strong_los.sample_db_array(5000)) < np.std(
            weak_los.sample_db_array(5000)
        )

    def test_high_k_nearly_deterministic(self):
        fading = RicianFading(40.0, np.random.default_rng(3))
        draws = fading.sample_db_array(2000)
        assert np.max(np.abs(draws)) < 1.0

    def test_scalar_matches_distribution(self):
        fading = RicianFading(10.0, np.random.default_rng(4))
        scalars = [fading.sample_db() for _ in range(5000)]
        assert np.mean([db_to_linear(s) for s in scalars]) == pytest.approx(
            1.0, rel=0.05
        )

    def test_deterministic_given_rng(self):
        a = RicianFading(10.0, np.random.default_rng(7))
        b = RicianFading(10.0, np.random.default_rng(7))
        assert a.sample_db() == b.sample_db()

    def test_deep_fades_rare_with_k10(self):
        """With K = 10 dB, fades below -10 dB are a small minority."""
        fading = RicianFading(10.0, np.random.default_rng(5))
        draws = fading.sample_db_array(10000)
        assert np.mean(draws < -10.0) < 0.02


class TestNoFading:
    def test_always_zero(self):
        fading = NoFading()
        assert fading.sample_db() == 0.0
        assert np.all(fading.sample_db_array(10) == 0.0)
