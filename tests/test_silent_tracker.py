"""Integration-style unit tests for the full Silent Tracker protocol.

These run small end-to-end simulations on a deterministic channel so
every assertion pins protocol behaviour, not channel luck.
"""

import pytest

from repro.core.config import SilentTrackerConfig
from repro.core.events import NeighborState, TrackerPhase
from repro.core.silent_tracker import SilentTracker
from repro.experiments.scenarios import build_cell_edge_deployment
from repro.net.connection import ConnectionState
from repro.net.deployment import DeploymentConfig
from repro.net.handover import HandoverOutcome
from repro.phy.channel import ChannelConfig


def make_run(scenario="walk", seed=1, config=None, deterministic=True,
             codebook="narrow", start_x=None):
    deployment_config = DeploymentConfig(
        master_seed=seed,
        channel=ChannelConfig.deterministic() if deterministic else ChannelConfig(),
    )
    deployment, mobile = build_cell_edge_deployment(
        seed,
        mobile_codebook=codebook,
        scenario=scenario,
        config=deployment_config,
        start_x=start_x,
    )
    tracker = SilentTracker(deployment, mobile, "cellA", config)
    return deployment, mobile, tracker


class TestInitialization:
    def test_initial_connection(self):
        deployment, mobile, tracker = make_run()
        assert mobile.connection.connected
        assert mobile.connection.serving_cell == "cellA"
        assert deployment.station("cellA").is_attached("ue0")

    def test_requires_known_serving_cell(self):
        deployment, mobile, _ = make_run()
        fresh_deployment, fresh_mobile = build_cell_edge_deployment(2)
        with pytest.raises(ValueError):
            SilentTracker(fresh_deployment, fresh_mobile, "nonexistent")

    def test_cannot_start_twice(self):
        _, _, tracker = make_run()
        tracker.start()
        with pytest.raises(RuntimeError):
            tracker.start()


class TestSearchAndTrack:
    def test_edge_b_fires_at_start(self):
        deployment, _, tracker = make_run()
        tracker.start()
        deployment.run(0.05)
        assert deployment.metrics.counter("fsm.neighbor.B") == 1
        assert tracker.timelines, "a timeline opens with the search"

    def test_neighbor_found_and_tracked(self):
        deployment, _, tracker = make_run()
        tracker.start()
        deployment.run(1.0)
        assert deployment.metrics.counter("fsm.neighbor.C") >= 1
        timeline = tracker.timelines[0]
        assert timeline.found_s is not None

    def test_serving_link_maintained_during_tracking(self):
        deployment, mobile, tracker = make_run()
        tracker.start()
        deployment.run(1.0)
        assert mobile.connection.state is not ConnectionState.IDLE

    def test_serving_degraded_policy_defers_search(self):
        config = SilentTrackerConfig(
            search_policy="serving-degraded", edge_snr_threshold_db=-50.0
        )
        deployment, _, tracker = make_run(config=config)
        tracker.start()
        deployment.run(0.5)
        # Threshold is unreachably low: search never starts.
        assert tracker.tracker.state is NeighborState.IDLE


class TestHandover:
    def test_walk_completes_soft_handover(self):
        deployment, mobile, tracker = make_run(scenario="walk", seed=3)
        tracker.start()
        deployment.run(6.0)
        records = tracker.handover_log.records
        completed = [r for r in records if r.complete_s is not None]
        assert completed, "walking across the boundary must hand over"
        first = completed[0]
        assert first.outcome is HandoverOutcome.SOFT
        assert first.target_cell == "cellB"
        assert mobile.connection.serving_cell == "cellB"

    def test_handover_rebinds_stations(self):
        deployment, mobile, tracker = make_run(scenario="walk", seed=3)
        tracker.start()
        deployment.run(6.0)
        assert deployment.station("cellB").is_attached("ue0")
        assert not deployment.station("cellA").is_attached("ue0")

    def test_timeline_ordering(self):
        deployment, _, tracker = make_run(scenario="walk", seed=3)
        tracker.start()
        deployment.run(6.0)
        timeline = next(t for t in tracker.timelines if t.complete_s is not None)
        assert timeline.search_start_s <= timeline.found_s
        assert timeline.found_s <= timeline.trigger_s
        assert timeline.trigger_s <= timeline.complete_s
        assert timeline.completion_time_s > 0
        assert timeline.tracking_time_s > 0

    def test_handover_trigger_margin_respected(self):
        """With a huge margin T the trigger never fires on this walk."""
        config = SilentTrackerConfig(handover_margin_db=60.0,
                                     handover_hysteresis_db=1.0)
        deployment, mobile, tracker = make_run(scenario="walk", seed=3,
                                               config=config)
        tracker.start()
        deployment.run(4.0)
        assert deployment.metrics.counter("handover.soft") == 0
        assert mobile.connection.serving_cell == "cellA"

    def test_soft_interruption_small(self):
        deployment, _, tracker = make_run(scenario="walk", seed=3)
        tracker.start()
        deployment.run(6.0)
        record = next(
            r for r in tracker.handover_log.records if r.complete_s is not None
        )
        # Make-before-break: interruption well under the RLF timeout.
        assert record.interruption_s < 0.2

    def test_stop_halts_watchdog(self):
        deployment, _, tracker = make_run()
        tracker.start()
        deployment.run(0.1)
        tracker.stop()
        fired_before = deployment.sim.events_fired
        deployment.run(0.5)
        # Only SSB bursts remain; the watchdog (10 ms period) is gone.
        fired = deployment.sim.events_fired - fired_before
        assert fired <= 0.5 / 0.020 * 3 + 5


class TestFig2bStateView:
    def test_initial_view(self):
        _, _, tracker = make_run()
        assert tracker.fig2b_state() in ("EO", "N-A/R")

    def test_view_during_search(self):
        deployment, _, tracker = make_run()
        tracker.start()
        deployment.run(0.03)
        assert tracker.fig2b_state() == "N-A/R"

    def test_view_during_tracking(self):
        deployment, _, tracker = make_run(scenario="walk", seed=3)
        tracker.start()
        deployment.run(1.0)
        if tracker.tracker.state is NeighborState.TRACKING:
            assert tracker.fig2b_state() in ("N-RBA", "S-RBA", "CABM")


class TestRotationScenario:
    def test_rotation_forces_beam_switches(self):
        """At 120 deg/s the tracker must adapt or re-acquire repeatedly."""
        deployment, _, tracker = make_run(scenario="rotation", seed=5)
        tracker.start()
        deployment.run(3.0)
        switches = tracker.tracker.adjacent_switches
        reacq = tracker.tracker.reacquisitions
        serving_switches = tracker.beamsurfer.mobile_switches
        assert switches + reacq + serving_switches >= 3

    def test_rotation_completes_handover(self):
        deployment, mobile, tracker = make_run(scenario="rotation", seed=5)
        tracker.start()
        deployment.run(8.0)
        completed = [
            r for r in tracker.handover_log.records if r.complete_s is not None
        ]
        assert completed


class TestVehicularScenario:
    def test_vehicular_completes_handover(self):
        deployment, mobile, tracker = make_run(scenario="vehicular", seed=7)
        tracker.start()
        deployment.run(4.0)
        completed = [
            r for r in tracker.handover_log.records if r.complete_s is not None
        ]
        assert completed
        assert mobile.connection.serving_cell in ("cellB", "cellC")


class TestReentry:
    def test_context_loss_enters_reentry(self):
        """Kill all cells' usefulness: the watchdog must drop the context."""
        config = SilentTrackerConfig(rlf_timeout_s=0.05,
                                     context_loss_timeout_s=0.15)
        deployment, mobile, tracker = make_run(
            scenario="walk", seed=9, config=config, codebook="omni"
        )
        # Omni codebook at 0 dBm BS power: serving detection fails, the
        # context dies, and re-entry search begins.
        tracker.start()
        deployment.run(2.0)
        assert deployment.metrics.counter("connection.context_lost") >= 1
        assert tracker.phase is TrackerPhase.REENTRY or (
            mobile.connection.serving_cell is not None
        )
