"""Unit tests for the link engine (burst measurement, up/downlink)."""

import pytest

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.net.base_station import BaseStation
from repro.net.link_engine import LinkEngine
from repro.phy.channel import Channel, ChannelConfig
from repro.phy.codebook import Codebook
from repro.phy.link import LinkBudget
from repro.sim.rng import RngRegistry


def make_engine(seed=1, deterministic=True):
    config = ChannelConfig.deterministic() if deterministic else ChannelConfig()
    registry = RngRegistry(seed)
    return LinkEngine(Channel(config, registry), registry)


def make_station(tx_power=10.0, cell_id="cellA"):
    return BaseStation(
        cell_id,
        Pose(Vec3(0.0, 10.0)),
        Codebook.uniform_azimuth(20.0),
        tx_power_dbm=tx_power,
        link_budget=LinkBudget(),
    )


def make_mobile_side(codebook=None):
    """A pose + gain function standing in for a Mobile at (10, 0)."""
    codebook = codebook or Codebook.uniform_azimuth(20.0)
    pose = Pose(Vec3(10.0, 0.0), heading=0.0)

    def gain(rx_beam, world_azimuth):
        return codebook.gain_dbi(rx_beam, pose.world_to_body(world_azimuth))

    return pose, gain, codebook


class TestMeasureBurst:
    def test_detects_on_aligned_beam(self):
        engine = make_engine()
        station = make_station(tx_power=10.0)
        pose, gain, codebook = make_mobile_side()
        rx_beam = codebook.best_beam_towards(
            pose.world_to_body(pose.bearing_to(station.pose.position))
        ).index
        measurement = engine.measure_burst(station, "ue0", pose, gain, rx_beam, 0.0)
        assert measurement.detected
        assert measurement.cell_id == "cellA"
        assert measurement.rx_beam == rx_beam

    def test_best_tx_beam_is_geometric_best(self):
        engine = make_engine()
        station = make_station(tx_power=10.0)
        pose, gain, codebook = make_mobile_side()
        rx_beam = codebook.best_beam_towards(
            pose.world_to_body(pose.bearing_to(station.pose.position))
        ).index
        measurement = engine.measure_burst(station, "ue0", pose, gain, rx_beam, 0.0)
        expected_tx = station.best_tx_beam_towards(
            station.pose.bearing_to(pose.position)
        )
        assert measurement.tx_beam == expected_tx

    def test_misaligned_beam_misses(self):
        engine = make_engine()
        station = make_station(tx_power=0.0)
        pose, gain, codebook = make_mobile_side()
        best = codebook.best_beam_towards(
            pose.world_to_body(pose.bearing_to(station.pose.position))
        ).index
        opposite = (best + len(codebook) // 2) % len(codebook)
        measurement = engine.measure_burst(station, "ue0", pose, gain, opposite, 0.0)
        assert not measurement.detected

    def test_snr_reported(self):
        engine = make_engine()
        station = make_station(tx_power=10.0)
        pose, gain, codebook = make_mobile_side()
        rx_beam = codebook.best_beam_towards(
            pose.world_to_body(pose.bearing_to(station.pose.position))
        ).index
        measurement = engine.measure_burst(station, "ue0", pose, gain, rx_beam, 0.0)
        assert measurement.snr_db == pytest.approx(
            station.link_budget.snr_db(measurement.rss_dbm)
        )

    def test_detection_threshold_override(self):
        engine = make_engine()
        station = make_station(tx_power=10.0)
        pose, gain, codebook = make_mobile_side()
        rx_beam = codebook.best_beam_towards(
            pose.world_to_body(pose.bearing_to(station.pose.position))
        ).index
        strict = engine.measure_burst(
            station, "ue0", pose, gain, rx_beam, 0.0, detection_snr_db=90.0
        )
        assert not strict.detected


class TestDirectedLinks:
    def test_downlink_rss_matches_mean_for_deterministic(self):
        engine = make_engine()
        station = make_station(tx_power=10.0)
        pose, gain, codebook = make_mobile_side()
        rx_beam = codebook.best_beam_towards(
            pose.world_to_body(pose.bearing_to(station.pose.position))
        ).index
        tx_beam = station.best_tx_beam_towards(
            station.pose.bearing_to(pose.position)
        )
        rss = engine.downlink_rss(
            station, "ue0", pose, gain, rx_beam, tx_beam, 0.0
        )
        expected = engine.channel.mean_rss_dbm(
            station.pose,
            pose,
            station.tx_gain_dbi(tx_beam, station.pose.bearing_to(pose.position)),
            gain(rx_beam, pose.bearing_to(station.pose.position)),
            10.0,
        )
        assert rss == pytest.approx(expected)

    def test_uplink_reciprocity_gains(self):
        """Up and downlink differ only by transmit power (reciprocity)."""
        engine = make_engine()
        station = make_station(tx_power=10.0)
        pose, gain, codebook = make_mobile_side()
        rx_beam = 0
        tx_beam = 0
        down = engine.downlink_rss(station, "ue0", pose, gain, rx_beam, tx_beam, 0.0)
        up = engine.uplink_rss(station, "ue0", pose, gain, rx_beam, tx_beam, 0.0)
        assert up - engine.mobile_tx_power_dbm == pytest.approx(down - 10.0)

    def test_aligned_uplink_succeeds(self):
        engine = make_engine()
        station = make_station(tx_power=10.0)
        pose, gain, codebook = make_mobile_side()
        rx_beam = codebook.best_beam_towards(
            pose.world_to_body(pose.bearing_to(station.pose.position))
        ).index
        tx_beam = station.best_tx_beam_towards(
            station.pose.bearing_to(pose.position)
        )
        successes = sum(
            engine.uplink_success(
                station, "ue0", pose, gain, rx_beam, tx_beam, 0.0
            )
            for _ in range(20)
        )
        assert successes == 20

    def test_misaligned_uplink_fails(self):
        engine = make_engine()
        station = make_station(tx_power=0.0)
        pose, gain, codebook = make_mobile_side()
        best = codebook.best_beam_towards(
            pose.world_to_body(pose.bearing_to(station.pose.position))
        ).index
        opposite = (best + len(codebook) // 2) % len(codebook)
        successes = sum(
            engine.uplink_success(station, "ue0", pose, gain, opposite, 0, 0.0)
            for _ in range(20)
        )
        assert successes == 0

    def test_preamble_margin_helps(self):
        """extra_margin_db rescues marginal uplinks."""
        engine = make_engine()
        station = make_station(tx_power=10.0)
        pose, gain, codebook = make_mobile_side()
        rx_beam = codebook.best_beam_towards(
            pose.world_to_body(pose.bearing_to(station.pose.position))
        ).index
        tx_beam = station.best_tx_beam_towards(
            station.pose.bearing_to(pose.position)
        )
        rss = engine.uplink_rss(station, "ue0", pose, gain, rx_beam, tx_beam, 0.0)
        # Sit exactly at 50% decode: margin should lift success rate.
        deficit = station.link_budget.rss_for_snr(
            station.link_budget.decode_snr_db
        ) - rss
        base = sum(
            engine.uplink_success(
                station, "ue0", pose, gain, rx_beam, tx_beam, 0.0,
                extra_margin_db=deficit,
            )
            for _ in range(200)
        )
        boosted = sum(
            engine.uplink_success(
                station, "ue0", pose, gain, rx_beam, tx_beam, 0.0,
                extra_margin_db=deficit + 6.0,
            )
            for _ in range(200)
        )
        assert boosted > base

    def test_link_id_canonical(self):
        assert LinkEngine.link_id("cellA", "ue0") == "cellA|ue0"
