"""The perf-benchmark harness: timing mechanics and artifact schema."""

import json

import pytest

from repro.bench.harness import (
    TimingResult,
    results_payload,
    speedup,
    time_fn,
    write_bench_json,
)


class TestTimeFn:
    def test_basic_statistics(self):
        calls = []
        result = time_fn("case", lambda: calls.append(1), repeats=5, warmup=2)
        assert len(calls) == 7  # warmup runs execute but are not sampled
        assert result.name == "case"
        assert result.repeats == 5 and result.warmup == 2
        assert len(result.samples_s) == 5
        assert result.min_s <= result.median_s <= max(result.samples_s)
        assert result.p25_s <= result.median_s <= result.p75_s
        assert result.iqr_s == pytest.approx(result.p75_s - result.p25_s)

    def test_meta_recorded(self):
        result = time_fn("case", lambda: None, repeats=1, warmup=0,
                         meta={"n": 3})
        assert result.meta == {"n": 3}

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            time_fn("case", lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_fn("case", lambda: None, repeats=1, warmup=-1)


class TestSpeedup:
    def test_ratio(self):
        slow = TimingResult("a", 1, 0, 2.0, 0.0, 2.0, 2.0, 2.0, 2.0, [2.0])
        fast = TimingResult("b", 1, 0, 0.5, 0.0, 0.5, 0.5, 0.5, 0.5, [0.5])
        assert speedup(slow, fast) == pytest.approx(4.0)

    def test_rejects_zero_candidate(self):
        zero = TimingResult("z", 1, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, [0.0])
        with pytest.raises(ValueError):
            speedup(zero, zero)


class TestArtifact:
    def test_write_bench_json_canonical(self, tmp_path):
        target = tmp_path / "nested" / "BENCH_phy.json"
        write_bench_json({"b": 2, "a": 1}, target)
        text = target.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 1, "b": 2}
        # Canonical: keys sorted on disk.
        assert text.index('"a"') < text.index('"b"')

    def test_results_payload_roundtrip(self):
        result = time_fn("case", lambda: None, repeats=2, warmup=0)
        payload = results_payload([result])
        assert payload[0]["name"] == "case"
        json.dumps(payload)  # must be JSON-serializable


def _result_with_median(name, median_s):
    return {"name": name, "median_s": median_s}


class TestCompare:
    def _payloads(self, current_median, baseline_median):
        current = {"results": [_result_with_median("case.a", current_median),
                               _result_with_median("only.current", 1.0)]}
        baseline = {"results": [_result_with_median("case.a", baseline_median),
                                _result_with_median("only.baseline", 1.0)]}
        return current, baseline

    def test_only_shared_cases_compared(self):
        from repro.bench.harness import compare_payloads

        comparisons = compare_payloads(*self._payloads(1.0, 1.0))
        assert [c.name for c in comparisons] == ["case.a"]

    def test_regression_beyond_tolerance(self):
        from repro.bench.harness import compare_payloads, regressions

        comparisons = compare_payloads(*self._payloads(1.3, 1.0))
        assert regressions(comparisons, tolerance=0.20) == comparisons
        assert regressions(comparisons, tolerance=0.50) == []

    def test_speedup_is_not_a_regression(self):
        from repro.bench.harness import compare_payloads, regressions

        comparisons = compare_payloads(*self._payloads(0.5, 1.0))
        assert regressions(comparisons, tolerance=0.0) == []

    def test_negative_tolerance_rejected(self):
        from repro.bench.harness import regressions

        with pytest.raises(ValueError):
            regressions([], tolerance=-0.1)

    def test_meta_mismatch_skipped(self):
        # A quick-mode run must not be gated against a full-mode
        # baseline: differing workload meta makes the timings
        # incomparable, so those cases are skipped (and named).
        from repro.bench.harness import compare_payloads, incomparable_cases

        current = {"results": [
            {"name": "case.a", "median_s": 1.0, "meta": {"n_bursts": 200}},
            {"name": "case.b", "median_s": 1.0, "meta": {"n": 5}},
        ]}
        baseline = {"results": [
            {"name": "case.a", "median_s": 1.0, "meta": {"n_bursts": 500}},
            {"name": "case.b", "median_s": 1.0, "meta": {"n": 5}},
        ]}
        comparisons = compare_payloads(current, baseline)
        assert [c.name for c in comparisons] == ["case.b"]
        assert incomparable_cases(current, baseline) == ["case.a"]

    def test_cli_compare_errors_when_nothing_comparable(self, tmp_path, capsys):
        from repro.bench import run_fleet_bench
        from repro.bench.harness import write_bench_json
        from repro.cli import main

        payload = run_fleet_bench(quick=True, repeats=1, warmup=0)
        # Same case names, different workload meta (a "full-mode"
        # baseline): every case is skipped, the gate would be vacuous.
        mismatched = {
            "results": [
                {**r, "meta": {**r["meta"], "duration_s": 99.0}}
                for r in payload["results"]
            ]
        }
        baseline = tmp_path / "baseline.json"
        write_bench_json(mismatched, baseline)
        status = main(
            ["bench", "--suite", "fleet", "--quick", "--repeats", "1",
             "--out", "", "--compare", str(baseline)]
        )
        assert status == 2
        err = capsys.readouterr().err
        assert "skipped" in err and "no comparable cases" in err

    def test_cli_compare_without_out_writes_nothing(
        self, tmp_path, capsys, monkeypatch
    ):
        # A gating run with no explicit --out must not clobber the
        # committed default artifact (the very baseline it reads).
        from repro.bench import run_fleet_bench
        from repro.bench.harness import write_bench_json
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        payload = run_fleet_bench(quick=True, repeats=1, warmup=0)
        slow = {
            "results": [{**r, "median_s": 3600.0} for r in payload["results"]]
        }
        baseline = tmp_path / "baseline.json"
        write_bench_json(slow, baseline)
        status = main(
            ["bench", "--suite", "fleet", "--quick", "--repeats", "1",
             "--compare", str(baseline)]
        )
        assert status == 0
        assert "no regressions" in capsys.readouterr().out
        assert not (tmp_path / "BENCH_fleet.json").exists()

    def test_cli_missing_baseline_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        status = main(
            ["bench", "--suite", "fleet", "--quick", "--repeats", "1",
             "--out", "", "--compare", str(tmp_path / "nope.json")]
        )
        assert status == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_negative_tolerance_exits_2_before_running(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        # The baseline file doesn't even exist: the tolerance check
        # must reject the invocation before anything runs or loads.
        status = main(
            ["bench", "--suite", "fleet", "--compare",
             str(tmp_path / "nope.json"), "--compare-tolerance", "-0.5"]
        )
        assert status == 2
        assert "non-negative" in capsys.readouterr().err

    def test_malformed_baseline_is_operational_error(self, tmp_path, capsys):
        from repro.bench.harness import BenchError, compare_payloads
        from repro.cli import main

        with pytest.raises(BenchError):
            compare_payloads({"results": [{"name": "a", "median_s": 1.0}]},
                             {"results": [{"name": "a"}]})
        with pytest.raises(BenchError):
            compare_payloads({"not-results": []}, {"results": []})
        # And through the CLI: message + exit 2, no traceback.
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"results": [{"name": "a"}]}', encoding="utf-8")
        status = main(
            ["bench", "--suite", "fleet", "--quick", "--repeats", "1",
             "--out", "", "--compare", str(baseline)]
        )
        assert status == 2
        assert "malformed result record" in capsys.readouterr().err

    def test_cli_compare_gates_exit_code(self, tmp_path, capsys):
        from repro.bench.harness import write_bench_json
        from repro.cli import main

        # A baseline claiming every case once took an hour: the current
        # run is faster, so the gate passes.
        fast_args = ["bench", "--suite", "fleet", "--quick", "--repeats", "1",
                     "--out", ""]
        from repro.bench import run_fleet_bench

        payload = run_fleet_bench(quick=True, repeats=1, warmup=0)
        slow = {
            "results": [
                {**r, "median_s": 3600.0} for r in payload["results"]
            ]
        }
        baseline = tmp_path / "baseline.json"
        write_bench_json(slow, baseline)
        assert main(fast_args + ["--compare", str(baseline)]) == 0
        assert "no regressions" in capsys.readouterr().out
        # A baseline claiming instant cases: everything regressed.
        instant = {
            "results": [
                {**r, "median_s": 1e-12} for r in payload["results"]
            ]
        }
        write_bench_json(instant, baseline)
        assert main(fast_args + ["--compare", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_cli_compare_when_out_overwrites_baseline(self, tmp_path, capsys):
        # Regression: with --out pointing at the baseline file (the
        # default when --out is omitted), the run used to overwrite the
        # baseline *before* loading it, comparing the run against
        # itself — every ratio 1.0, the gate always green.
        from repro.bench import run_fleet_bench
        from repro.bench.harness import write_bench_json
        from repro.cli import main

        payload = run_fleet_bench(quick=True, repeats=1, warmup=0)
        instant = {
            "results": [{**r, "median_s": 1e-12} for r in payload["results"]]
        }
        baseline = tmp_path / "baseline.json"
        write_bench_json(instant, baseline)
        status = main(
            ["bench", "--suite", "fleet", "--quick", "--repeats", "1",
             "--out", str(baseline), "--compare", str(baseline)]
        )
        assert status == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestFleetSuite:
    def test_quick_fleet_suite_schema(self, tmp_path):
        from repro.bench.fleet_suite import run_fleet_bench

        out = tmp_path / "BENCH_fleet.json"
        payload = run_fleet_bench(
            quick=True, out_path=str(out), repeats=1, warmup=0
        )
        assert out.exists()
        assert payload["suite"] == "fleet"
        derived = payload["derived"]
        assert derived["artifacts_identical"] is True
        for n_users, speedups in derived["speedups"].items():
            assert set(speedups) == {
                "speedup_vs_scalar", "speedup_vs_permobile",
            }
        curves = derived["scaling_median_s"]
        assert set(curves) == {"scalar", "permobile", "batch"}
        # The batch path never loses to the fully scalar reference.
        for n_users in curves["batch"]:
            assert curves["batch"][n_users] < curves["scalar"][n_users]


class TestSuite:
    def test_quick_suite_schema_and_determinism_check(self, tmp_path):
        from repro.bench.suites import run_bench

        out = tmp_path / "BENCH_phy.json"
        payload = run_bench(quick=True, out_path=str(out), repeats=1, warmup=0)
        assert out.exists()
        assert payload["format"] == 1
        names = {r["name"] for r in payload["results"]}
        assert {"burst.measure.scalar", "burst.measure.vectorized",
                "fig2a.burst_heavy.scalar",
                "fig2a.burst_heavy.vectorized"} <= names
        derived = payload["derived"]
        assert set(derived["speedups"]) == {
            "antenna.gain", "codebook.gains", "fading.rician",
            "burst.measure", "fig2a.search", "fig2a.burst_heavy",
            "dense.c64", "dense.c256", "dense.c1024",
        }
        # Coalesced scheduling + the cell index must actually win on
        # the dense corridor, even at quick-mode durations.
        for n_cells in (64, 256, 1024):
            assert derived["speedups"][f"dense.c{n_cells}"] > 1.0
        assert derived["events_per_s"] > 0
        assert derived["artifacts_identical"] is True
        assert json.loads(out.read_text(encoding="utf-8")) == payload
