"""The perf-benchmark harness: timing mechanics and artifact schema."""

import json

import pytest

from repro.bench.harness import (
    TimingResult,
    results_payload,
    speedup,
    time_fn,
    write_bench_json,
)


class TestTimeFn:
    def test_basic_statistics(self):
        calls = []
        result = time_fn("case", lambda: calls.append(1), repeats=5, warmup=2)
        assert len(calls) == 7  # warmup runs execute but are not sampled
        assert result.name == "case"
        assert result.repeats == 5 and result.warmup == 2
        assert len(result.samples_s) == 5
        assert result.min_s <= result.median_s <= max(result.samples_s)
        assert result.p25_s <= result.median_s <= result.p75_s
        assert result.iqr_s == pytest.approx(result.p75_s - result.p25_s)

    def test_meta_recorded(self):
        result = time_fn("case", lambda: None, repeats=1, warmup=0,
                         meta={"n": 3})
        assert result.meta == {"n": 3}

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            time_fn("case", lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_fn("case", lambda: None, repeats=1, warmup=-1)


class TestSpeedup:
    def test_ratio(self):
        slow = TimingResult("a", 1, 0, 2.0, 0.0, 2.0, 2.0, 2.0, 2.0, [2.0])
        fast = TimingResult("b", 1, 0, 0.5, 0.0, 0.5, 0.5, 0.5, 0.5, [0.5])
        assert speedup(slow, fast) == pytest.approx(4.0)

    def test_rejects_zero_candidate(self):
        zero = TimingResult("z", 1, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, [0.0])
        with pytest.raises(ValueError):
            speedup(zero, zero)


class TestArtifact:
    def test_write_bench_json_canonical(self, tmp_path):
        target = tmp_path / "nested" / "BENCH_phy.json"
        write_bench_json({"b": 2, "a": 1}, target)
        text = target.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 1, "b": 2}
        # Canonical: keys sorted on disk.
        assert text.index('"a"') < text.index('"b"')

    def test_results_payload_roundtrip(self):
        result = time_fn("case", lambda: None, repeats=2, warmup=0)
        payload = results_payload([result])
        assert payload[0]["name"] == "case"
        json.dumps(payload)  # must be JSON-serializable


class TestSuite:
    def test_quick_suite_schema_and_determinism_check(self, tmp_path):
        from repro.bench.suites import run_bench

        out = tmp_path / "BENCH_phy.json"
        payload = run_bench(quick=True, out_path=str(out), repeats=1, warmup=0)
        assert out.exists()
        assert payload["format"] == 1
        names = {r["name"] for r in payload["results"]}
        assert {"burst.measure.scalar", "burst.measure.vectorized",
                "fig2a.burst_heavy.scalar",
                "fig2a.burst_heavy.vectorized"} <= names
        derived = payload["derived"]
        assert set(derived["speedups"]) == {
            "antenna.gain", "codebook.gains", "fading.rician",
            "burst.measure", "fig2a.search", "fig2a.burst_heavy",
        }
        assert derived["artifacts_identical"] is True
        assert json.loads(out.read_text(encoding="utf-8")) == payload
