"""Unit tests for the connection context."""

import pytest

from repro.net.connection import ConnectionContext, ConnectionState


class TestLifecycle:
    def test_starts_idle(self):
        connection = ConnectionContext()
        assert connection.state is ConnectionState.IDLE
        assert not connection.connected
        assert connection.serving_cell is None

    def test_establish(self):
        connection = ConnectionContext()
        connection.establish("cellA", 3, now_s=1.0)
        assert connection.connected
        assert connection.serving_cell == "cellA"
        assert connection.rx_beam == 3
        assert connection.established_s == 1.0

    def test_touch_updates_contact(self):
        connection = ConnectionContext()
        connection.establish("cellA", 3, now_s=1.0)
        connection.touch(2.5)
        assert connection.last_contact_s == 2.5
        assert connection.silence_s(3.0) == pytest.approx(0.5)

    def test_touch_idle_raises(self):
        with pytest.raises(RuntimeError):
            ConnectionContext().touch(1.0)

    def test_rlf_then_recovery(self):
        connection = ConnectionContext()
        connection.establish("cellA", 3, now_s=0.0)
        connection.declare_rlf()
        assert connection.state is ConnectionState.RLF
        assert not connection.connected
        connection.touch(1.0)  # contact during guard re-establishes
        assert connection.connected

    def test_rlf_from_idle_ignored(self):
        connection = ConnectionContext()
        connection.declare_rlf()
        assert connection.state is ConnectionState.IDLE

    def test_drop_loses_everything(self):
        connection = ConnectionContext()
        connection.establish("cellA", 3, now_s=0.0)
        connection.drop()
        assert connection.state is ConnectionState.IDLE
        assert connection.serving_cell is None
        assert connection.rx_beam is None

    def test_age(self):
        connection = ConnectionContext()
        connection.establish("cellA", 3, now_s=2.0)
        assert connection.age_s(5.0) == pytest.approx(3.0)

    def test_reestablish_resets_age(self):
        connection = ConnectionContext()
        connection.establish("cellA", 3, now_s=0.0)
        connection.establish("cellB", 1, now_s=4.0)
        assert connection.serving_cell == "cellB"
        assert connection.age_s(5.0) == pytest.approx(1.0)
