"""Cross-module integration tests: full protocol runs with invariants
checked against the trace."""

import pytest

from repro.core.config import SilentTrackerConfig
from repro.core.silent_tracker import SilentTracker
from repro.experiments.scenarios import build_cell_edge_deployment
from repro.net.handover import HandoverOutcome


def full_run(scenario, seed, duration_s=6.0, config=None):
    deployment, mobile = build_cell_edge_deployment(seed, scenario=scenario)
    tracker = SilentTracker(deployment, mobile, "cellA", config)
    tracker.start()
    deployment.run(duration_s)
    tracker.stop()
    return deployment, mobile, tracker


class TestTraceInvariants:
    @pytest.fixture(scope="class")
    def run(self):
        return full_run("walk", seed=3)

    def test_edge_c_preceded_by_edge_b(self, run):
        deployment, _, _ = run
        events = deployment.trace.filter(category="fsm.neighbor")
        first_b = next(e.time for e in events if e.data["edge"] == "B")
        first_c = next(e.time for e in events if e.data["edge"] == "C")
        assert first_b <= first_c

    def test_handover_trigger_before_complete(self, run):
        deployment, _, _ = run
        trigger = deployment.trace.last(category="handover.trigger")
        complete = deployment.trace.last(category="handover.complete")
        assert trigger is not None and complete is not None
        assert trigger.time <= complete.time

    def test_rach_messages_ordered(self, run):
        deployment, _, _ = run
        msg1 = deployment.trace.filter(category="rach.msg1")
        msg4 = deployment.trace.filter(category="rach.msg4")
        assert msg1 and msg4
        assert msg1[0].time < msg4[-1].time

    def test_exactly_one_mobile_in_trace(self, run):
        deployment, _, _ = run
        nodes = {e.node for e in deployment.trace.events}
        assert nodes == {"ue0"}


class TestAttachmentInvariant:
    def test_at_most_one_serving_attachment(self):
        """At every handover boundary the mobile is attached to exactly
        the serving station."""
        deployment, mobile, tracker = full_run("walk", seed=3)
        attached = [
            s.cell_id for s in deployment.stations if s.is_attached("ue0")
        ]
        serving = mobile.connection.serving_cell
        if serving is None:
            assert attached == []
        else:
            assert attached == [serving]


class TestMeasurementBudget:
    def test_single_rf_chain_respected(self):
        """Staggered phases mean no skips; the mobile never measures two
        overlapping bursts."""
        deployment, mobile, _ = full_run("walk", seed=3, duration_s=2.0)
        assert mobile.bursts_skipped_busy == 0
        assert mobile.bursts_measured > 0

    def test_declines_tracked_but_unneeded_cells(self):
        """While focused on one neighbor, other cells' bursts are declined
        (measurement budget discipline)."""
        deployment, mobile, _ = full_run("walk", seed=3, duration_s=2.0)
        assert mobile.bursts_declined > 0


class TestMultipleHandoProtocols:
    def test_back_to_back_handovers_on_long_walk(self):
        """Walking the full street (A -> B -> C) yields two handovers."""
        deployment, mobile = build_cell_edge_deployment(
            11, scenario="walk", start_x=8.0
        )
        tracker = SilentTracker(deployment, mobile, "cellA")
        tracker.start()
        deployment.run(18.0)  # 1.4 m/s * 18 s = ~25 m of street
        tracker.stop()
        completed = [
            r for r in tracker.handover_log.records if r.complete_s is not None
        ]
        assert len(completed) >= 1
        targets = [r.target_cell for r in completed]
        assert targets[0] == "cellB"

    def test_interruption_lower_for_soft(self):
        deployment, mobile, tracker = full_run("walk", seed=3)
        softs = [
            r
            for r in tracker.handover_log.records
            if r.outcome is HandoverOutcome.SOFT
        ]
        for record in softs:
            assert record.interruption_s < 0.5


class TestConfigSensitivity:
    def test_tight_rlf_still_works_on_walk(self):
        config = SilentTrackerConfig(rlf_timeout_s=0.06,
                                     context_loss_timeout_s=0.3)
        _, mobile, tracker = full_run("walk", seed=3, config=config)
        completed = [
            r for r in tracker.handover_log.records if r.complete_s is not None
        ]
        assert completed

    def test_zero_margin_hands_over_earlier(self):
        eager_config = SilentTrackerConfig(handover_margin_db=0.5,
                                           handover_hysteresis_db=0.5)
        lazy_config = SilentTrackerConfig(handover_margin_db=8.0,
                                          handover_hysteresis_db=1.0)
        _, _, eager = full_run("walk", seed=3, config=eager_config,
                               duration_s=8.0)
        _, _, lazy = full_run("walk", seed=3, config=lazy_config,
                              duration_s=8.0)
        eager_first = min(
            (r.trigger_s for r in eager.handover_log.records), default=None
        )
        lazy_first = min(
            (r.trigger_s for r in lazy.handover_log.records), default=None
        )
        assert eager_first is not None
        if lazy_first is not None:
            assert eager_first <= lazy_first
