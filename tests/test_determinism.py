"""Determinism: a run is a pure function of its master seed."""

from repro.core.silent_tracker import SilentTracker
from repro.experiments.fig2c import run_tracking_trial
from repro.experiments.scenarios import build_cell_edge_deployment


def run_once(seed):
    deployment, mobile = build_cell_edge_deployment(seed, scenario="walk")
    tracker = SilentTracker(deployment, mobile, "cellA")
    tracker.start()
    deployment.run(4.0)
    tracker.stop()
    trace_signature = [
        (round(e.time, 9), e.category, tuple(sorted(e.data.items())))
        for e in deployment.trace.events
    ]
    return {
        "serving": mobile.connection.serving_cell,
        "handovers": [
            (r.source_cell, r.target_cell, r.outcome, r.complete_s)
            for r in tracker.handover_log.records
        ],
        "search_dwells": tracker.tracker.search_dwells,
        "events_fired": deployment.sim.events_fired,
        "trace": trace_signature,
    }


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        assert run_once(12345) == run_once(12345)

    def test_different_seeds_differ(self):
        a = run_once(1)
        b = run_once(2)
        assert a["trace"] != b["trace"]

    def test_trial_api_deterministic(self):
        assert run_tracking_trial("vehicular", seed=77) == run_tracking_trial(
            "vehicular", seed=77
        )

    def test_stochastic_components_reproducible(self):
        """RSS time-series over the full channel are seed-reproducible."""
        def rss_series(seed):
            deployment, mobile = build_cell_edge_deployment(seed)
            station = deployment.station("cellA")
            series = []
            for k in range(50):
                t = 0.02 * k
                rx_beam = mobile.best_rx_beam_towards(station, t)
                series.append(
                    deployment.links.measure_burst(
                        station,
                        mobile.mobile_id,
                        mobile.pose_at(t),
                        mobile.rx_gain_fn(t),
                        rx_beam,
                        t,
                    ).rss_dbm
                )
            return series

        assert rss_series(5) == rss_series(5)
        assert rss_series(5) != rss_series(6)
