"""Tests for the markdown report generator."""

import pytest

from repro.analysis.report import (
    comparison_section,
    fig2a_section,
    fig2c_section,
    generate_report,
)


class TestSections:
    def test_fig2a_section_structure(self):
        text = fig2a_section(n_trials=3, base_seed=6000)
        assert text.startswith("## Fig. 2a")
        assert "| codebook |" in text
        assert "narrow" in text and "omni" in text

    def test_fig2c_section_structure(self):
        text = fig2c_section(n_trials=2, base_seed=6100)
        assert text.startswith("## Fig. 2c")
        for scenario in ("walk", "rotation", "vehicular"):
            assert scenario in text

    def test_comparison_section_structure(self):
        text = comparison_section(n_trials=2, base_seed=6200)
        assert "silent-tracker" in text
        assert "reactive" in text


class TestGenerateReport:
    def test_full_report(self):
        text = generate_report(n_trials=2, base_seed=6300)
        assert text.startswith("# Silent Tracker reproduction report")
        assert "## Fig. 2a" in text
        assert "## Fig. 2c" in text
        assert "## Baseline comparison" in text

    def test_section_selection(self):
        text = generate_report(n_trials=2, sections=["fig2a"], base_seed=6400)
        assert "## Fig. 2a" in text
        assert "## Fig. 2c" not in text

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError):
            generate_report(n_trials=2, sections=["fig9"])

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            generate_report(n_trials=0)
