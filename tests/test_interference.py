"""Tests for the interference/SINR substrate and EXT-SINR experiment."""

import pytest

from repro.experiments.interference import (
    summarize_alignment_cost,
    sweep_positions,
)
from repro.phy.interference import aggregate_power_dbm, sinr_db


class TestAggregation:
    def test_single_level_identity(self):
        assert aggregate_power_dbm([-60.0]) == pytest.approx(-60.0)

    def test_equal_levels_add_3db(self):
        assert aggregate_power_dbm([-60.0, -60.0]) == pytest.approx(-57.0, abs=0.02)

    def test_dominant_term_wins(self):
        total = aggregate_power_dbm([-40.0, -80.0])
        assert total == pytest.approx(-40.0, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_power_dbm([])


class TestSinr:
    def test_no_interference_equals_snr(self):
        assert sinr_db(-60.0, [], -80.0) == pytest.approx(20.0)

    def test_interference_degrades(self):
        clean = sinr_db(-60.0, [], -80.0)
        dirty = sinr_db(-60.0, [-70.0], -80.0)
        assert dirty < clean

    def test_interference_floor(self):
        """Interference 10 dB above noise dominates the denominator."""
        value = sinr_db(-60.0, [-70.0], -100.0)
        assert value == pytest.approx(10.0, abs=0.1)

    def test_many_weak_interferers_accumulate(self):
        one = sinr_db(-60.0, [-75.0], -90.0)
        ten = sinr_db(-60.0, [-75.0] * 10, -90.0)
        assert ten < one - 5.0


class TestAlignmentSweep:
    @pytest.fixture(scope="class")
    def samples(self):
        return sweep_positions(seed=1)

    def test_sinr_never_exceeds_snr(self, samples):
        for sample in samples:
            assert sample.sinr_db <= sample.snr_db + 1e-9

    def test_alignment_costs_detection(self, samples):
        summary = summarize_alignment_cost(samples)
        assert summary["detect_rate_aligned"] <= summary["detect_rate_staggered"]
        assert summary["mean_sinr_penalty_db"] > 0.0

    def test_penalty_worst_near_interferer(self, samples):
        """The SINR penalty is largest where the serving cell is strong
        relative to the searched cell (near cellA, far from cellB)."""
        near = next(s for s in samples if s.x_m == min(x.x_m for x in samples))
        far = next(s for s in samples if s.x_m == max(x.x_m for x in samples))
        assert (near.snr_db - near.sinr_db) > (far.snr_db - far.sinr_db)

    def test_summary_fields(self, samples):
        summary = summarize_alignment_cost(samples)
        assert summary["positions"] == len(samples)
        assert 0.0 <= summary["detect_rate_aligned"] <= 1.0

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            summarize_alignment_cost([])
