"""Coalesced burst scheduling: grids, equivalence, telemetry pin.

The load-bearing claims of the ``BurstScheduler`` determinism contract:

* a single-member grid fires at bitwise-identical times to the
  ``PeriodicTask`` it replaces;
* same ``(origin, period)`` registrations share one grid (one heap
  event per tick, the whole group delivered together in registration
  order);
* member stop / scheduler stop retire grids without ghost events;
* the engine re-resolves the ambient telemetry hub at run entry, so a
  hub installed after construction still sees event spans.
"""

import pytest

from repro.obs import Telemetry, use
from repro.sim.engine import BurstScheduler, PeriodicTask, SimulationError, Simulator


class TestSingleMemberEquivalence:
    def test_fire_times_match_periodic_task_bitwise(self):
        period = 0.02
        delay = 0.0137

        periodic_times = []
        sim_a = Simulator()
        PeriodicTask(
            sim_a, period, lambda: periodic_times.append(sim_a.now),
            start_delay=delay,
        )
        sim_a.run_until(1.0)

        coalesced_times = []
        sim_b = Simulator()
        scheduler = BurstScheduler(
            sim_b, lambda payloads: coalesced_times.append(sim_b.now)
        )
        scheduler.add(period, "station", start_delay=delay)
        sim_b.run_until(1.0)

        assert periodic_times  # the grid actually ran
        # Bitwise equality, not approx: both arms must evaluate the
        # same float expressions or dense runs drift apart.
        assert coalesced_times == periodic_times

    def test_next_fire_matches_periodic_task(self):
        sim_a = Simulator()
        task = PeriodicTask(sim_a, 0.02, lambda: None, start_delay=0.005)
        sim_a.run_until(0.1)
        task.stop()

        sim_b = Simulator()
        scheduler = BurstScheduler(sim_b, lambda payloads: None)
        member = scheduler.add(0.02, "s", start_delay=0.005)
        sim_b.run_until(0.1)
        member.stop()

        assert member.next_fire_s == task.next_fire_s


class TestCoalescing:
    def test_same_key_members_share_one_grid(self):
        sim = Simulator()
        delivered = []
        scheduler = BurstScheduler(sim, delivered.append)
        for name in ("a", "b", "c"):
            scheduler.add(0.02, name, start_delay=0.01)
        scheduler.add(0.02, "d", start_delay=0.015)  # different phase
        assert scheduler.grid_count == 2
        sim.run_until(0.02)
        # One delivery per grid tick, whole group in registration order.
        assert ["a", "b", "c"] in delivered
        assert ["d"] in delivered

    def test_coalesced_tick_is_one_event(self):
        sim = Simulator()
        scheduler = BurstScheduler(sim, lambda payloads: None)
        for name in ("a", "b", "c"):
            scheduler.add(0.02, name)
        sim.run_until(0.05)  # ticks at 0.0, 0.02, 0.04
        assert sim.events_fired == 3

    def test_stopped_member_leaves_tick(self):
        sim = Simulator()
        delivered = []
        scheduler = BurstScheduler(sim, delivered.append)
        scheduler.add(0.02, "a")
        member = scheduler.add(0.02, "b")
        sim.run_until(0.01)
        member.stop()
        sim.run_until(0.03)
        assert delivered == [["a", "b"], ["a"]]

    def test_all_members_stopped_cancels_event(self):
        sim = Simulator()
        scheduler = BurstScheduler(sim, lambda payloads: None)
        members = [scheduler.add(0.02, name) for name in ("a", "b")]
        sim.run_until(0.01)
        for member in members:
            member.stop()
        assert sim.pending_events == 0

    def test_stop_inside_delivery_counts_tick(self):
        sim = Simulator()
        handles = {}

        def deliver(payloads):
            handles["m"].stop()

        scheduler = BurstScheduler(sim, deliver)
        handles["m"] = scheduler.add(1.0, "a", start_delay=0.25)
        sim.run_until(2.0)
        assert handles["m"].next_fire_s == pytest.approx(1.25)
        assert sim.pending_events == 0

    def test_scheduler_stop_cancels_everything(self):
        sim = Simulator()
        delivered = []
        scheduler = BurstScheduler(sim, delivered.append)
        scheduler.add(0.02, "a")
        scheduler.add(0.03, "b")
        sim.run_until(0.01)
        scheduler.stop()
        sim.run_until(0.2)
        assert delivered == [["a"], ["b"]]  # only the t=0 ticks
        assert sim.pending_events == 0

    def test_rejects_bad_arguments(self):
        scheduler = BurstScheduler(Simulator(), lambda payloads: None)
        with pytest.raises(SimulationError):
            scheduler.add(0.0, "a")
        with pytest.raises(SimulationError):
            scheduler.add(0.02, "a", start_delay=-0.1)

    def test_grid_label_aggregates(self):
        sim = Simulator()
        scheduler = BurstScheduler(sim, lambda payloads: None)
        member = scheduler.add(0.02, "a", label="ssb.cellA")
        assert member.next_fire_s == 0.0
        grid = member._grid
        assert grid.label() == "ssb.cellA"
        scheduler.add(0.02, "b", label="ssb.cellB")
        assert grid.label() == "ssb.x2"


class TestTelemetryReresolve:
    def test_hub_installed_after_construction_sees_event_spans(self):
        sim = Simulator()  # constructed while no hub is installed
        sim.schedule(0.5, lambda: None, label="ssb.cellA")
        hub = Telemetry()
        with use(hub):
            sim.run_until(1.0)
        summary = hub.summary()
        assert "sim.event.ssb" in summary["spans"]
        assert summary["counters"]["sim.events.ssb.cellA"] == 1
