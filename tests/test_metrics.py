"""Unit tests for the metrics recorder."""

import pytest

from repro.sim.metrics import MetricsRecorder


class TestCounters:
    def test_default_zero(self):
        assert MetricsRecorder().counter("x") == 0

    def test_increment(self):
        metrics = MetricsRecorder()
        metrics.incr("x")
        metrics.incr("x", 4)
        assert metrics.counter("x") == 5

    def test_merge(self):
        a = MetricsRecorder()
        b = MetricsRecorder()
        a.incr("x", 2)
        b.incr("x", 3)
        b.incr("y")
        a.merge_counters_from(b)
        assert a.counter("x") == 5
        assert a.counter("y") == 1


class TestGauges:
    def test_unset_is_none(self):
        assert MetricsRecorder().gauge("g") is None

    def test_last_write_wins(self):
        metrics = MetricsRecorder()
        metrics.set_gauge("g", 1.0)
        metrics.set_gauge("g", 2.0)
        assert metrics.gauge("g") == 2.0


class TestSeries:
    def test_record_and_read(self):
        metrics = MetricsRecorder()
        metrics.record("rss", 0.1, -60.0)
        metrics.record("rss", 0.2, -62.0)
        assert metrics.series_values("rss") == [-60.0, -62.0]

    def test_series_arrays(self):
        metrics = MetricsRecorder()
        metrics.record("rss", 0.1, -60.0)
        metrics.record("rss", 0.2, -62.0)
        times, values = metrics.series_arrays("rss")
        assert times == [0.1, 0.2]
        assert values == [-60.0, -62.0]

    def test_stats_follow_series(self):
        metrics = MetricsRecorder()
        for value in (1.0, 2.0, 3.0):
            metrics.record("s", 0.0, value)
        assert metrics.stats("s").mean == pytest.approx(2.0)

    def test_unknown_series_empty(self):
        metrics = MetricsRecorder()
        assert metrics.series("nope") == []
        assert metrics.stats("nope").count == 0


class TestSummary:
    def test_structure(self):
        metrics = MetricsRecorder()
        metrics.incr("c")
        metrics.set_gauge("g", 7.0)
        metrics.record("s", 0.0, 1.0)
        summary = metrics.summary()
        assert summary["counters"] == {"c": 1}
        assert summary["gauges"] == {"g": 7.0}
        assert summary["series"]["s"]["count"] == 1
