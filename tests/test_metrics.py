"""Unit tests for the metrics recorder."""

import json

import pytest

from repro.sim.metrics import MetricsRecorder


class TestCounters:
    def test_default_zero(self):
        assert MetricsRecorder().counter("x") == 0

    def test_increment(self):
        metrics = MetricsRecorder()
        metrics.incr("x")
        metrics.incr("x", 4)
        assert metrics.counter("x") == 5

    def test_merge(self):
        a = MetricsRecorder()
        b = MetricsRecorder()
        a.incr("x", 2)
        b.incr("x", 3)
        b.incr("y")
        a.merge_counters_from(b)
        assert a.counter("x") == 5
        assert a.counter("y") == 1

    def test_counters_view_is_a_copy(self):
        metrics = MetricsRecorder()
        metrics.incr("x", 2)
        view = metrics.counters()
        view["x"] = 99
        view["new"] = 1
        assert metrics.counter("x") == 2
        assert metrics.counter("new") == 0

    def test_merge_leaves_source_untouched(self):
        a = MetricsRecorder()
        b = MetricsRecorder()
        b.incr("x", 3)
        a.merge_counters_from(b)
        a.incr("x")
        assert b.counter("x") == 3


class TestGauges:
    def test_unset_is_none(self):
        assert MetricsRecorder().gauge("g") is None

    def test_last_write_wins(self):
        metrics = MetricsRecorder()
        metrics.set_gauge("g", 1.0)
        metrics.set_gauge("g", 2.0)
        assert metrics.gauge("g") == 2.0


class TestSeries:
    def test_record_and_read(self):
        metrics = MetricsRecorder()
        metrics.record("rss", 0.1, -60.0)
        metrics.record("rss", 0.2, -62.0)
        assert metrics.series_values("rss") == [-60.0, -62.0]

    def test_series_arrays(self):
        metrics = MetricsRecorder()
        metrics.record("rss", 0.1, -60.0)
        metrics.record("rss", 0.2, -62.0)
        times, values = metrics.series_arrays("rss")
        assert times == [0.1, 0.2]
        assert values == [-60.0, -62.0]

    def test_stats_follow_series(self):
        metrics = MetricsRecorder()
        for value in (1.0, 2.0, 3.0):
            metrics.record("s", 0.0, value)
        assert metrics.stats("s").mean == pytest.approx(2.0)

    def test_unknown_series_empty(self):
        metrics = MetricsRecorder()
        assert metrics.series("nope") == []
        assert metrics.stats("nope").count == 0


class TestMergeFrom:
    def make_pair(self):
        a = MetricsRecorder()
        b = MetricsRecorder()
        a.incr("x", 2)
        a.set_gauge("g", 1.0)
        a.record("s", 0.0, 1.0)
        b.incr("x", 3)
        b.set_gauge("g", 5.0)
        b.record("s", 0.1, 3.0)
        b.record("t", 0.2, 7.0)
        return a, b

    def test_counters_add(self):
        a, b = self.make_pair()
        a.merge_from(b)
        assert a.counter("x") == 5

    def test_gauges_last_write_wins(self):
        a, b = self.make_pair()
        a.merge_from(b)
        assert a.gauge("g") == 5.0

    def test_series_samples_concatenate(self):
        a, b = self.make_pair()
        a.merge_from(b)
        assert a.series_values("s") == [1.0, 3.0]
        assert a.series_values("t") == [7.0]

    def test_series_stats_merge_exactly(self):
        # The merged online stats must equal stats over the combined
        # sample stream, not an approximation.
        a, b = self.make_pair()
        a.merge_from(b)
        reference = MetricsRecorder()
        for time, value in ((0.0, 1.0), (0.1, 3.0)):
            reference.record("s", time, value)
        assert a.stats("s").mean == pytest.approx(reference.stats("s").mean)
        assert a.stats("s").variance == pytest.approx(
            reference.stats("s").variance
        )
        assert a.stats("s").count == reference.stats("s").count

    def test_names_views(self):
        a, b = self.make_pair()
        assert b.series_names() == ["s", "t"]
        assert b.gauges() == {"g": 5.0}


class TestSummary:
    def test_structure(self):
        metrics = MetricsRecorder()
        metrics.incr("c")
        metrics.set_gauge("g", 7.0)
        metrics.record("s", 0.0, 1.0)
        summary = metrics.summary()
        assert summary["counters"] == {"c": 1}
        assert summary["gauges"] == {"g": 7.0}
        assert summary["series"]["s"]["count"] == 1

    def test_json_round_trip(self):
        metrics = MetricsRecorder()
        metrics.incr("c", 3)
        metrics.set_gauge("g", 7.5)
        for value in (1.0, 2.0, 4.0):
            metrics.record("s", 0.0, value)
        summary = metrics.summary()
        assert json.loads(json.dumps(summary)) == summary
