"""Failure injection: the protocol under hostile channel conditions.

These tests crank individual impairments far beyond the calibrated
defaults and check the protocol *degrades*, not *breaks*: state
machines stay consistent, watchdogs fire, and recovery paths engage.
"""

import pytest

from repro.core.config import SilentTrackerConfig
from repro.core.events import NeighborState
from repro.core.silent_tracker import SilentTracker
from repro.experiments.scenarios import build_cell_edge_deployment
from repro.net.deployment import DeploymentConfig
from repro.phy.blockage import BlockageConfig
from repro.phy.channel import ChannelConfig


def run_with_channel(channel_config, scenario="walk", seed=3, duration_s=6.0,
                     tracker_config=None):
    deployment, mobile = build_cell_edge_deployment(
        seed,
        scenario=scenario,
        config=DeploymentConfig(master_seed=seed, channel=channel_config),
    )
    protocol = SilentTracker(deployment, mobile, "cellA", tracker_config)
    protocol.start()
    deployment.run(duration_s)
    protocol.stop()
    return deployment, mobile, protocol


class TestBlockageStorm:
    """Blockers arriving 10x the calibrated rate with deep shadows."""

    @pytest.fixture(scope="class")
    def run(self):
        storm = ChannelConfig(
            blockage=BlockageConfig(
                rate_per_s=2.0,
                mean_duration_s=0.4,
                mean_attenuation_db=25.0,
            )
        )
        return run_with_channel(storm)

    def test_losses_occur_and_reacquire(self, run):
        deployment, _, protocol = run
        # Deep blockage forces edge D losses...
        assert deployment.metrics.counter("fsm.neighbor.D") >= 1
        # ...and re-acquisition recovers at least once (edge C again).
        assert deployment.metrics.counter("fsm.neighbor.C") >= 2

    def test_state_machine_consistent(self, run):
        _, _, protocol = run
        assert protocol.tracker.state in (
            NeighborState.IDLE,
            NeighborState.SEARCHING,
            NeighborState.TRACKING,
        )
        # Accounting invariant: losses == reacquisitions by construction.
        assert protocol.tracker.losses == protocol.tracker.reacquisitions

    def test_rlf_machinery_engaged(self, run):
        deployment, _, _ = run
        # The serving link takes hits too: RLF declarations happen but
        # the run does not crash.
        assert deployment.metrics.counter("connection.rlf") >= 0


class TestDeepFading:
    """Rayleigh-like fading (K = 0 dB) everywhere."""

    def test_protocol_survives(self):
        config = ChannelConfig(rician_k_db=0.0)
        deployment, mobile, protocol = run_with_channel(config)
        # Progress is still made: the tracker searched, and serving
        # measurements were delivered.
        assert protocol.tracker.search_dwells > 0
        assert mobile.bursts_measured > 50


class TestHeavyShadowing:
    """8 dB shadowing (3x the 60 GHz LoS fit)."""

    def test_handover_still_possible(self):
        config = ChannelConfig(shadowing_sigma_db=8.0)
        _, _, protocol = run_with_channel(config, duration_s=8.0)
        # With 8 dB swings the trigger fires readily; at least one
        # handover episode must resolve (any outcome).
        resolved = [
            r for r in protocol.handover_log.records if r.outcome is not None
        ]
        assert resolved


class TestTotalNeighborOutage:
    """Two-cell deployment where the neighbor is unreachably far."""

    def test_tracker_keeps_searching(self):
        # Rotate in place on the far side of cellA: cellB is ~37 m away
        # (SNR below the detection floor except on shadowing peaks) and
        # always far weaker than the 18 m serving link, so edge E never
        # fires; the tracker just keeps searching / probing.
        deployment, mobile = build_cell_edge_deployment(
            5, scenario="rotation", n_cells=2, start_x=-15.0
        )
        protocol = SilentTracker(deployment, mobile, "cellA")
        protocol.start()
        deployment.run(3.0)
        protocol.stop()
        assert protocol.tracker.search_dwells > 20
        completed = [
            r for r in protocol.handover_log.records if r.complete_s is not None
        ]
        assert not completed
