"""Tests for the Fig. 2a experiment runner (search latency / success)."""

import pytest

from repro.experiments.fig2a import run_fig2a, run_search_trial


class TestSearchTrial:
    def test_narrow_search_succeeds(self):
        result = run_search_trial("narrow", seed=3)
        assert result.success
        assert result.dwells >= 1
        assert result.time_to_found_s is not None
        assert result.time_to_found_s <= 1.0

    def test_deterministic_per_seed(self):
        a = run_search_trial("narrow", seed=11)
        b = run_search_trial("narrow", seed=11)
        assert a == b

    def test_seeds_vary_outcome(self):
        dwells = {run_search_trial("narrow", seed=s).dwells for s in range(5)}
        assert len(dwells) > 1

    def test_scenario_field_propagates(self):
        result = run_search_trial("wide", scenario="rotation", seed=1)
        assert result.scenario == "rotation"
        assert result.codebook == "wide"


class TestFig2aAggregate:
    @pytest.fixture(scope="class")
    def results(self):
        return run_fig2a(n_trials=12, base_seed=900)

    def test_success_ordering(self, results):
        """The paper's headline: narrow > wide >> omni."""
        assert results["narrow"]["success_rate"] >= results["wide"]["success_rate"]
        assert results["wide"]["success_rate"] > results["omni"]["success_rate"]

    def test_narrow_success_high(self, results):
        assert results["narrow"]["success_rate"] >= 0.9

    def test_omni_success_low(self, results):
        assert results["omni"]["success_rate"] <= 0.3

    def test_latency_summaries_present(self, results):
        latency = results["narrow"]["latency"]
        assert latency["count"] > 0
        assert latency["mean"] > 0

    def test_narrow_needs_more_dwells_than_wide(self, results):
        """More beams to walk -> higher median search latency."""
        assert (
            results["narrow"]["latency"]["p50"]
            > results["wide"]["latency"]["p50"]
        )

    def test_trial_lists_full(self, results):
        for kind in ("narrow", "wide", "omni"):
            assert len(results[kind]["trials"]) == 12

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            run_fig2a(n_trials=0)
