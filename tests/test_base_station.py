"""Unit tests for the base-station node."""

import math

import pytest

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.net.base_station import BaseStation
from repro.phy.codebook import Codebook


def make_station(heading=0.0, beamwidth=30.0, cell_id="cellA"):
    return BaseStation(
        cell_id,
        Pose(Vec3(0.0, 10.0), heading=heading),
        Codebook.uniform_azimuth(beamwidth),
        tx_power_dbm=0.0,
        ssb_phase_s=0.0,
    )


class TestGeometry:
    def test_best_beam_points_at_target(self):
        station = make_station()
        target_azimuth = -math.pi / 4
        beam = station.best_tx_beam_towards(target_azimuth)
        boresight = station.codebook[beam].boresight_rad
        assert abs(boresight - target_azimuth) <= math.radians(15.0) + 1e-9

    def test_heading_rotates_codebook(self):
        # Same world target; stations with different headings pick beams
        # whose world boresights agree.
        a = make_station(heading=0.0)
        b = make_station(heading=math.pi / 2)
        target = 0.3
        beam_a = a.codebook[a.best_tx_beam_towards(target)].boresight_rad
        beam_b = b.codebook[b.best_tx_beam_towards(target)].boresight_rad
        world_a = a.pose.body_to_world(beam_a)
        world_b = b.pose.body_to_world(beam_b)
        assert abs(world_a - world_b) <= math.radians(30.0)

    def test_tx_gain_peaks_on_best_beam(self):
        station = make_station()
        azimuth = 0.5
        best = station.best_tx_beam_towards(azimuth)
        gains = [
            station.tx_gain_dbi(i, azimuth) for i in range(len(station.codebook))
        ]
        assert gains[best] == max(gains)


class TestAttachment:
    def test_attach_and_query(self):
        station = make_station()
        station.attach("ue0", 3)
        assert station.is_attached("ue0")
        assert station.serving_tx_beam("ue0") == 3

    def test_detach(self):
        station = make_station()
        station.attach("ue0", 3)
        station.detach("ue0")
        assert not station.is_attached("ue0")

    def test_detach_unknown_is_noop(self):
        make_station().detach("ghost")

    def test_serving_beam_unknown_raises(self):
        with pytest.raises(KeyError):
            make_station().serving_tx_beam("ghost")

    def test_attach_validates_beam(self):
        station = make_station()
        with pytest.raises(IndexError):
            station.attach("ue0", 99)


class TestRefinement:
    def test_refine_moves_one_hop_toward_mobile(self):
        station = make_station(beamwidth=30.0)
        # Serve on a beam two hops away from the true bearing.
        true_azimuth = 0.0
        best = station.best_tx_beam_towards(true_azimuth)
        start = (best + 2) % len(station.codebook)
        station.attach("ue0", start)
        refined = station.refine_tx_beam("ue0", true_azimuth)
        assert station.codebook.hop_distance(refined, start) == 1
        assert station.codebook.hop_distance(refined, best) == 1

    def test_refine_stays_when_already_best(self):
        station = make_station()
        best = station.best_tx_beam_towards(0.4)
        station.attach("ue0", best)
        assert station.refine_tx_beam("ue0", 0.4) == best

    def test_repeated_refinement_converges(self):
        station = make_station(beamwidth=20.0)
        best = station.best_tx_beam_towards(-0.8)
        start = (best + 5) % len(station.codebook)
        station.attach("ue0", start)
        for _ in range(5):
            station.refine_tx_beam("ue0", -0.8)
        assert station.serving_tx_beam("ue0") == best


class TestValidation:
    def test_rejects_empty_cell_id(self):
        with pytest.raises(ValueError):
            BaseStation("", Pose(Vec3(0, 0)), Codebook.uniform_azimuth(30.0))

    def test_schedule_matches_codebook(self):
        station = make_station(beamwidth=30.0)
        assert station.schedule.n_beams == len(station.codebook)
