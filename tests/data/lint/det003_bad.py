"""DET003 positive fixture: unordered data flowing into artifacts.

Expected findings: two DET003 (``json.dumps`` without ``sort_keys``,
and a set constructor reaching a ``json.dumps`` sink unsorted).
"""

import json


def dump(payload, tags):
    blob = json.dumps(payload)
    labels = json.dumps({"tags": set(tags)}, sort_keys=True)
    return blob, labels
