"""DET005 positive fixture: stream-key literals outside the namespace.

Linted under a ``repro/net/*`` module key; expected findings: two
DET005 (a typo'd ``.stream`` key and a typo'd ``derive_seed`` name).
"""


def streams(registry):
    shadow = registry.stream("shadwoing/cell-0")
    seed = registry.derive_seed(3, "uplnk")
    return shadow, seed
