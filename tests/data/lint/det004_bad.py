"""DET004 positive fixture: raw/undeclared switch reads in library code.

Linted under a ``repro/net/*`` module key; expected findings: four
DET004 (raw ``os.environ.get`` of a declared switch, raw ``os.getenv``
of an undeclared one — which also trips the declared-name check — and
a raw ``os.environ[...]`` subscript).
"""

import os


def flags():
    fast = os.environ.get("REPRO_BURST_PATH", "vectorized")
    undeclared = os.getenv("REPRO_TURBO")
    sched = os.environ["REPRO_BURST_SCHED"]
    return fast, undeclared, sched
