"""DET005 negative fixture: keys inside the declared namespace."""


def streams(registry, user_id):
    shadow = registry.stream("shadowing/cell-0")
    uplink = registry.stream("uplink")
    user = registry.stream(f"user/{user_id}")
    return shadow, uplink, user
