"""DET001 negative fixture: the sanctioned wall-clock accessor."""

from repro.obs.telemetry import wall_clock


def span():
    started = wall_clock()
    return wall_clock() - started
