"""DET003 negative fixture: explicit ordering at every sink."""

import json


def dump(payload, tags):
    return json.dumps(
        {"payload": payload, "tags": sorted(set(tags))}, sort_keys=True
    )
