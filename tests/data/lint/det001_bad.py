"""DET001 positive fixture: wall-clock reads in library code.

Linted under a ``repro/net/*`` module key; expected findings: two
DET001 (``time.time`` and ``datetime.datetime.now``).
"""

import time
from datetime import datetime


def stamp():
    started = time.time()
    now = datetime.now()
    return started, now
