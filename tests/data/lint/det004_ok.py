"""DET004 negative fixture: the declared-table accessor."""

from repro.util.switches import switch_value


def flags():
    return switch_value("REPRO_BURST_PATH")
