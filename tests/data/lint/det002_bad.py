"""DET002 positive fixture: ad-hoc RNG in library code.

Linted under a ``repro/net/*`` module key; expected findings: three
DET002 (``import random``, legacy ``np.random.normal``, and a bare
``default_rng`` outside the declared seeding sites).
"""

import random

import numpy as np


def draw():
    rng = np.random.default_rng(7)
    return rng.normal() + np.random.normal() + random.random()
