"""DET006 positive fixture: hidden mutable state in simulation code.

Linted under a ``repro/net/*`` module key; expected findings: four
DET006 (two module-level mutable containers, one mutable positional
default, one mutable keyword-only default).
"""

from typing import List

CACHE = {}
HISTORY: List[int] = []


def append(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(items, *, seen={}):
    for item in items:
        seen[item] = seen.get(item, 0) + 1
    return seen
