"""DET002 negative fixture: randomness from a named registry stream."""


def draw(registry):
    return registry.stream("decode/example").normal()
