"""DET006 negative fixture: immutable module state, None defaults."""

from typing import List, Optional, Tuple

NAMES: Tuple[str, ...] = ("walk", "rotation")

__all__ = ["NAMES", "append"]


def append(item, bucket: Optional[List] = None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket
