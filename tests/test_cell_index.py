"""Spatial cell index: bounds, guard radius, hash queries, safety rails.

The index may only ever prune links that *provably* cannot detect, so
these tests check conservativeness end to end: the fading/shadowing
tail bounds, the path-loss inverses, the trajectory position bounds,
the spatial-hash query, and the deployment-level guards that turn a
violated assumption (horizon overrun, codebook swap) into a loud error
instead of a silently wrong artifact.
"""

import math

import numpy as np
import pytest

from repro.experiments.scenarios import build_corridor_deployment
from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.base import StaticPose, TimeShifted
from repro.mobility.rotation import DeviceRotation
from repro.mobility.vehicular import VehicularDriveBy
from repro.mobility.walk import HumanWalk
from repro.net.cell_index import (
    DEFAULT_TAIL_SIGMA,
    CellIndex,
    fading_gain_bound_db,
    guard_radius_m,
)
from repro.net.mobile import Mobile
from repro.phy.codebook import Codebook
from repro.phy.fading import RicianFading
from repro.phy.pathloss import (
    CloseInPathLoss,
    DualSlopePathLoss,
    FreeSpacePathLoss,
    PathLossModel,
)


class _Sweep:
    def __init__(self, n_beams):
        self._n = n_beams
        self._count = 0

    def choose_rx_beam(self, cell_id, now_s):
        self._count += 1
        return self._count % self._n

    def on_measurement(self, measurement):
        pass


class TestFadingBound:
    def test_disabled_fading_bounds_at_zero(self):
        assert fading_gain_bound_db(None, DEFAULT_TAIL_SIGMA) == 0.0

    def test_bound_dominates_sampled_gains(self):
        # Empirical check: 10^6 draws never exceed the 12-sigma bound,
        # and a modest 3-sigma bound already covers nearly all of them.
        bound = fading_gain_bound_db(10.0, DEFAULT_TAIL_SIGMA)
        fading = RicianFading(10.0, np.random.default_rng(5))
        draws = fading.sample_db_array(1_000_000)
        assert float(draws.max()) < bound

    def test_bound_never_negative(self):
        # log10(max(power, 1)): a deep-fade-only bound would be
        # negative, which must clamp to 0 (fading can only help the
        # attacker side of the budget, never be *required* to hurt it).
        assert fading_gain_bound_db(-20.0, 0.0) == 0.0


class TestPathLossInverses:
    @pytest.mark.parametrize(
        "model",
        [
            FreeSpacePathLoss(60.0e9),
            CloseInPathLoss(60.0e9, exponent=2.1),
            CloseInPathLoss(60.0e9, exponent=3.2),
            DualSlopePathLoss(60.0e9),
        ],
    )
    @pytest.mark.parametrize("loss_db", [60.0, 90.0, 110.0, 140.0])
    def test_inverse_is_conservative(self, model, loss_db):
        distance = model.max_distance_for_loss(loss_db)
        assert distance is not None
        # Beyond the returned distance the loss must be >= loss_db.
        for factor in (1.0 + 1e-9, 1.5, 10.0):
            assert model.path_loss_db(distance * factor) >= loss_db - 1e-6

    def test_dual_slope_below_breakpoint_loss(self):
        model = DualSlopePathLoss(60.0e9, breakpoint_m=15.0)
        shallow = model.max_distance_for_loss(70.0)
        assert shallow is not None and shallow <= model.breakpoint_m

    def test_default_inverse_is_none(self):
        class Opaque(PathLossModel):
            def path_loss_db(self, distance_m):
                return 100.0

        assert Opaque().max_distance_for_loss(120.0) is None


class TestPositionBounds:
    def _check(self, trajectory, horizon_s, samples=200):
        bound = trajectory.position_bound(horizon_s)
        assert bound is not None
        center, radius = bound
        horizon = 1e4 if horizon_s is None else horizon_s
        for k in range(samples + 1):
            position = trajectory.position_at(horizon * k / samples)
            assert center.distance_to(position) <= radius + 1e-9

    def test_static_bound_is_exact(self):
        trajectory = StaticPose(Pose(Vec3(3.0, 4.0, 1.5), 0.0))
        assert trajectory.position_bound(None) == (Vec3(3.0, 4.0, 1.5), 0.0)

    def test_rotation_bounded_without_horizon(self):
        trajectory = DeviceRotation(Vec3(1.0, 2.0, 1.5), math.pi)
        self._check(trajectory, None)

    def test_walk_requires_horizon(self):
        trajectory = HumanWalk(Vec3(0.0, 0.0, 1.5), Vec3(1.4, 0.0, 0.0))
        assert trajectory.position_bound(None) is None
        self._check(trajectory, 30.0)

    def test_vehicular_requires_horizon(self):
        trajectory = VehicularDriveBy(Vec3(0.0, 0.0, 1.5), 0.3, 14.0)
        assert trajectory.position_bound(None) is None
        self._check(trajectory, 10.0)

    def test_time_shifted_delegates(self):
        inner = HumanWalk(Vec3(0.0, 0.0, 1.5), Vec3(1.4, 0.0, 0.0))
        shifted = TimeShifted(inner, 5.0)
        assert shifted.position_bound(None) is None
        self._check(shifted, 20.0)


class TestCellIndex:
    def _stations(self, deployment):
        return list(deployment._stations.values())

    def test_within_matches_brute_force(self):
        deployment = build_corridor_deployment(3, n_cells=32)
        stations = self._stations(deployment)
        for bucket_m in (10.0, 100.0, 5000.0):
            index = CellIndex(stations, bucket_m=bucket_m)
            assert len(index) == 32
            for radius in (0.0, 120.0, 700.0):
                center = Vec3(333.0, 5.0, 1.5)
                expected = frozenset(
                    s.cell_id
                    for s in stations
                    if center.distance_to(s.pose.position) <= radius
                )
                assert index.within(center, radius) == expected

    def test_rejects_bad_arguments(self):
        deployment = build_corridor_deployment(3, n_cells=4)
        with pytest.raises(ValueError):
            CellIndex(self._stations(deployment), bucket_m=0.0)
        index = CellIndex(self._stations(deployment), bucket_m=50.0)
        with pytest.raises(ValueError):
            index.within(Vec3(0.0, 0.0, 0.0), -1.0)


class TestGuardRadius:
    def _population(self, n_cells=16):
        deployment = build_corridor_deployment(3, n_cells=n_cells)
        codebook = Codebook.uniform_azimuth(20.0)
        mobiles = [
            Mobile("ue0", StaticPose(Pose(Vec3(5.0, 0.0, 1.5), 0.0)), codebook)
        ]
        return deployment, list(deployment._stations.values()), mobiles

    def test_radius_excludes_only_undetectable_stations(self):
        deployment, stations, mobiles = self._population()
        radius = guard_radius_m(deployment.channel, stations, mobiles)
        assert radius is not None and radius > 0.0
        # The corridor's 50 m pitch means nearby cells are inside any
        # sane guard radius and the 16-cell span (750 m) exceeds it.
        assert radius > 50.0
        assert radius < 750.0

    def test_empty_population_disables(self):
        deployment, stations, mobiles = self._population()
        assert guard_radius_m(deployment.channel, [], mobiles) is None
        assert guard_radius_m(deployment.channel, stations, []) is None

    def test_uninvertible_pathloss_disables(self):
        class Opaque(PathLossModel):
            def path_loss_db(self, distance_m):
                return 100.0

        deployment, stations, mobiles = self._population()
        deployment.channel.pathloss = Opaque()
        assert (
            guard_radius_m(deployment.channel, stations, mobiles) is None
        )

    def test_missing_link_budget_disables(self):
        deployment, stations, mobiles = self._population()
        stations[3].link_budget = None
        assert (
            guard_radius_m(deployment.channel, stations, mobiles) is None
        )


class TestDeploymentGuards:
    def _dense_deployment(self, horizon_s=None, n_cells=24):
        from repro.net.deployment import DeploymentConfig
        from repro.experiments.scenarios import build_corridor_deployment

        config = None
        if horizon_s is not None:
            config = DeploymentConfig(horizon_s=horizon_s)
        deployment = build_corridor_deployment(
            7, config=config, n_cells=n_cells
        )
        codebook = Codebook.uniform_azimuth(20.0)
        mobile = Mobile(
            "ue0", StaticPose(Pose(Vec3(5.0, 0.0, 1.5), 0.0)), codebook
        )
        mobile.attach_listener(_Sweep(len(codebook)))
        deployment.add_mobile(mobile)
        return deployment, mobile

    def test_static_mobiles_prune_without_horizon(self):
        deployment, mobile = self._dense_deployment()
        deployment.start()
        assert deployment._candidates is not None
        candidates = deployment._candidates[mobile.mobile_id]
        assert 0 < len(candidates) < len(deployment._stations)
        # Static bounds need no horizon, so overrunning any duration
        # is fine: no RuntimeError past any particular time.
        assert deployment._index_horizon_s is None
        deployment.run(1.0)

    def test_walker_pruning_requires_horizon(self):
        from repro.net.deployment import DeploymentConfig

        deployment = build_corridor_deployment(7, n_cells=24)
        codebook = Codebook.uniform_azimuth(20.0)
        mobile = Mobile(
            "ue0",
            HumanWalk(Vec3(5.0, 0.0, 1.5), Vec3(1.4, 0.0, 0.0)),
            codebook,
        )
        deployment.add_mobile(mobile)
        deployment.start()
        # No horizon configured: the walker cannot be bounded.
        assert (
            deployment._candidates is None
            or mobile.mobile_id not in deployment._candidates
        )

    def test_horizon_overrun_raises_with_active_exclusions(self):
        deployment, mobile = self._dense_deployment(horizon_s=0.5)
        # Force the index to treat the (static, horizon-free) bound as
        # horizon-dependent by replacing the trajectory with a walker
        # before start.
        mobile.trajectory = HumanWalk(
            Vec3(5.0, 0.0, 1.5), Vec3(0.5, 0.0, 0.0)
        )
        with pytest.raises(RuntimeError, match="cell-index horizon"):
            deployment.run(1.0)

    def test_codebook_swap_to_hotter_codebook_raises(self):
        deployment, mobile = self._dense_deployment()
        deployment.run(0.1)
        hotter = Codebook.uniform_azimuth(2.0)  # far higher peak gain
        assert hotter.max_gain_dbi > mobile.codebook.max_gain_dbi
        mobile.codebook = hotter
        with pytest.raises(RuntimeError, match="swapped"):
            deployment.run(1.0)

    def test_codebook_swap_to_equal_bound_is_allowed(self):
        deployment, mobile = self._dense_deployment()
        deployment.run(0.1)
        mobile.codebook = Codebook.uniform_azimuth(20.0)  # same peak gain
        deployment.run(0.2)

    def test_index_off_never_populates_candidates(self):
        from repro.bench.harness import env_override

        with env_override("REPRO_CELL_INDEX", "off"):
            deployment, mobile = self._dense_deployment()
            deployment.run(0.2)
        assert deployment._candidates is None
