"""Tests for the declared ``REPRO_*`` switch table."""

import pytest

from repro.cli import main
from repro.util.switches import (
    SWITCHES,
    declared_switches,
    switch,
    switch_records,
    switch_value,
)


class TestTable:
    def test_declared_names(self):
        assert set(SWITCHES) == {
            "REPRO_BURST_PATH",
            "REPRO_BURST_SCHED",
            "REPRO_FLEET_PATH",
            "REPRO_CELL_INDEX",
            "REPRO_HEARTBEAT_S",
            "REPRO_STALL_S",
        }

    def test_defaults_are_legal_values(self):
        for declared in declared_switches():
            if declared.values:
                assert declared.default in declared.values
            else:
                # Free-form switches must at least describe their domain.
                assert declared.hint
            assert declared.description

    def test_records_shape(self):
        records = switch_records()
        assert [record["name"] for record in records] == [
            declared.name for declared in declared_switches()
        ]
        for record in records:
            assert {"name", "default", "values", "description",
                    "hint"} <= set(record)


class TestSwitchValue:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_BURST_PATH", raising=False)
        assert switch_value("REPRO_BURST_PATH") == "vectorized"

    def test_reads_env_at_call_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_BURST_SCHED", "legacy")
        assert switch_value("REPRO_BURST_SCHED") == "legacy"
        monkeypatch.setenv("REPRO_BURST_SCHED", "coalesced")
        assert switch_value("REPRO_BURST_SCHED") == "coalesced"

    def test_bad_value_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_INDEX", "maybe")
        with pytest.raises(ValueError, match="REPRO_CELL_INDEX"):
            switch_value("REPRO_CELL_INDEX")

    def test_free_form_switch_accepts_any_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "0.25")
        assert switch_value("REPRO_HEARTBEAT_S") == "0.25"

    def test_undeclared_name_is_loud(self):
        with pytest.raises(ValueError, match="REPRO_TURBO"):
            # repro: lint-waive[DET004]: probing the undeclared-name error
            switch("REPRO_TURBO")


class TestCli:
    def test_bad_switch_value_is_one_line_exit_two(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BURST_SCHED", "bogus")
        assert main(["fleet", "run", "--users", "2", "--duration", "0.5",
                     "--out", "/dev/null"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_BURST_SCHED" in err
        assert "Traceback" not in err

    def test_list_switches(self, capsys):
        assert main(["list", "switches"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_BURST_PATH" in out
        assert "vectorized" in out
        assert "REPRO_CELL_INDEX" in out
        # Free-form monitor switches show their hint where enumerated
        # switches show the value set.
        assert "REPRO_HEARTBEAT_S" in out
        assert "REPRO_STALL_S" in out
        assert "seconds > 0" in out
