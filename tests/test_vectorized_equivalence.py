"""Scalar-vs-vectorized equivalence of the burst-evaluation path.

The batch path's contract is *bit-for-bit* equality with the scalar
reference, including RNG stream state: any drift here silently changes
every artifact.  These tests pin the contract at every layer — antenna
patterns, codebook gains, fading/shadowing stream order, channel burst
evaluation, the full link engine, and finally trace-level campaign
artifacts.
"""

import json
import math
import os

import numpy as np
import pytest

from repro.experiments.scenarios import build_cell_edge_deployment
from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.phy.antenna import (
    AntennaPattern,
    GaussianBeamPattern,
    OmniPattern,
    UlaPattern,
)
from repro.phy.channel import Channel, ChannelConfig
from repro.phy.codebook import Beam, Codebook
from repro.phy.fading import NoFading, RicianFading
from repro.phy.shadowing import ShadowingProcess
from repro.sim.rng import RngRegistry

#: Angles that stress the ±pi seam alongside generic offsets.
SEAM_ANGLES = [0.0, math.pi, -math.pi, 2.0 * math.pi, -2.0 * math.pi,
               0.5 * math.pi, -0.5 * math.pi, 3.75, -3.75]


def _patterns():
    return [
        GaussianBeamPattern(math.radians(20.0)),
        GaussianBeamPattern(math.radians(60.0), peak_gain_dbi=14.0),
        OmniPattern(1.5),
        UlaPattern(8),
        UlaPattern(1),
        UlaPattern(3, element_gain_dbi=2.0),
    ]


class TestPatternArrays:
    @pytest.mark.parametrize("pattern", _patterns(), ids=repr)
    def test_bit_identical_to_scalar(self, pattern):
        rng = np.random.default_rng(17)
        offsets = np.concatenate([rng.uniform(-7.0, 7.0, 512), SEAM_ANGLES])
        vectorized = pattern.gain_dbi_array(offsets)
        scalar = np.array([pattern.gain_dbi(float(o)) for o in offsets])
        assert np.array_equal(vectorized, scalar)

    @pytest.mark.parametrize("pattern", _patterns(), ids=repr)
    def test_preserves_shape(self, pattern):
        offsets = np.linspace(-1.0, 1.0, 6).reshape(2, 3)
        assert pattern.gain_dbi_array(offsets).shape == (2, 3)

    @pytest.mark.parametrize("pattern", _patterns(), ids=repr)
    def test_empty_input_is_float64(self, pattern):
        empty = pattern.gain_dbi_array(np.array([]))
        assert empty.shape == (0,)
        assert empty.dtype == np.float64

    def test_default_implementation_contract(self):
        class Linear(AntennaPattern):
            def gain_dbi(self, offset_rad):
                return 2.0 * offset_rad

            @property
            def peak_gain_dbi(self):
                return 0.0

            @property
            def beamwidth_rad(self):
                return 1.0

        pattern = Linear()
        gains = pattern.gain_dbi_array(np.ones((3, 2)))
        assert gains.shape == (3, 2)
        assert np.array_equal(gains, np.full((3, 2), 2.0))
        empty = pattern.gain_dbi_array([])
        assert empty.dtype == np.float64 and empty.shape == (0,)


class TestCodebookBatch:
    @pytest.mark.parametrize("kind", ["narrow", "wide", "omni"])
    def test_gains_match_scalar(self, kind):
        from repro.experiments.scenarios import make_mobile_codebook

        codebook = make_mobile_codebook(kind)
        for azimuth in np.random.default_rng(3).uniform(-4.0, 4.0, 100):
            batch = codebook.gains_dbi(float(azimuth))
            scalar = [codebook.gain_dbi(i, float(azimuth)) for i in range(len(codebook))]
            assert list(batch) == scalar

    def test_index_subset(self):
        codebook = Codebook.uniform_azimuth(20.0)
        subset = codebook.gains_dbi(0.3, [0, 5, 17])
        assert list(subset) == [codebook.gain_dbi(i, 0.3) for i in (0, 5, 17)]
        with pytest.raises(IndexError):
            codebook.gains_dbi(0.3, [99])

    def test_mixed_patterns_grouped(self):
        narrow = GaussianBeamPattern(math.radians(20.0))
        wide = GaussianBeamPattern(math.radians(60.0))
        beams = [
            Beam(0, -1.0, narrow),
            Beam(1, 0.0, wide),
            Beam(2, 1.0, narrow),
        ]
        codebook = Codebook(beams)
        batch = codebook.gains_dbi(0.25)
        assert list(batch) == [b.gain_dbi(0.25) for b in beams]
        subset = codebook.gains_dbi(0.25, [2, 0])
        assert list(subset) == [beams[2].gain_dbi(0.25), beams[0].gain_dbi(0.25)]

    def test_wrap_point_ring_accepted(self):
        pattern = GaussianBeamPattern(math.radians(72.0))
        ring_deg = (90.0, 162.0, -126.0, -54.0, 18.0)  # crosses ±180°
        codebook = Codebook(
            [Beam(i, math.radians(d), pattern) for i, d in enumerate(ring_deg)]
        )
        assert len(codebook) == 5

    def test_shuffled_ring_rejected(self):
        pattern = GaussianBeamPattern(math.radians(72.0))
        bad_deg = (90.0, -126.0, 162.0, -54.0, 18.0)  # two wrap points
        with pytest.raises(ValueError):
            Codebook(
                [Beam(i, math.radians(d), pattern) for i, d in enumerate(bad_deg)]
            )


class TestStreamOrder:
    @pytest.mark.parametrize("k_db", [10.0, 3.0])
    def test_fading_array_matches_scalar_sequence(self, k_db):
        batch_fading = RicianFading(k_db, np.random.default_rng(9))
        scalar_fading = RicianFading(k_db, np.random.default_rng(9))
        batch = batch_fading.sample_db_array(33)
        scalar = [scalar_fading.sample_db() for _ in range(33)]
        assert list(batch) == scalar
        # Streams stay aligned after the batch draw.
        follow_up = [batch_fading.sample_db() for _ in range(5)]
        assert follow_up == [scalar_fading.sample_db() for _ in range(5)]

    def test_no_fading_array(self):
        assert list(NoFading().sample_db_array(4)) == [0.0] * 4

    def test_shadowing_repeat_matches_scalar_loop(self):
        batch = ShadowingProcess(2.5, 1.5, np.random.default_rng(11))
        scalar = ShadowingProcess(2.5, 1.5, np.random.default_rng(11))
        value = batch.sample_repeat_db(0.7, 18)
        assert [scalar.sample_db(0.7) for _ in range(18)] == [value] * 18
        # Identical stream state afterwards.
        assert batch.sample_db(1.2) == scalar.sample_db(1.2)

    def test_shadowing_repeat_zero_sigma_draws_nothing(self):
        process = ShadowingProcess(0.0, 1.5, np.random.default_rng(1))
        assert process.sample_repeat_db(0.0, 5) == 0.0


def _make_channel(seed, deterministic=False):
    config = (
        ChannelConfig.deterministic() if deterministic else ChannelConfig()
    )
    return Channel(config, RngRegistry(seed))


class TestChannelBurst:
    @pytest.mark.parametrize("deterministic", [False, True])
    @pytest.mark.parametrize("n_beams", [1, 6, 18])
    def test_burst_matches_scalar_loop(self, n_beams, deterministic):
        scalar_channel = _make_channel(5, deterministic)
        batch_channel = _make_channel(5, deterministic)
        tx_pose = Pose(Vec3(0.0, 10.0), heading=-0.5 * math.pi)
        rng = np.random.default_rng(2)
        gains = rng.uniform(-10.0, 19.0, n_beams)
        for burst in range(12):
            time_s = 0.02 * burst
            rx_pose = Pose(Vec3(10.0 + 0.03 * burst, 0.0), heading=0.1 * burst)
            scalar_rss = [
                scalar_channel.rss_dbm(
                    "cellA|ue0", time_s, tx_pose, rx_pose,
                    float(g), 3.0, 0.0,
                )
                for g in gains
            ]
            batch_rss = batch_channel.burst_rss_dbm(
                "cellA|ue0", time_s, tx_pose, rx_pose, gains, 3.0, 0.0
            )
            assert list(batch_rss) == scalar_rss

    def test_include_fading_false(self):
        scalar_channel = _make_channel(7)
        batch_channel = _make_channel(7)
        tx_pose = Pose(Vec3(0.0, 10.0))
        rx_pose = Pose(Vec3(9.0, 0.0))
        gains = np.array([1.0, 2.0, 3.0])
        scalar_rss = [
            scalar_channel.rss_dbm(
                "l", 0.0, tx_pose, rx_pose, float(g), 0.0, 0.0,
                include_fading=False,
            )
            for g in gains
        ]
        batch_rss = batch_channel.burst_rss_dbm(
            "l", 0.0, tx_pose, rx_pose, gains, 0.0, 0.0, include_fading=False
        )
        assert list(batch_rss) == scalar_rss

    def test_empty_burst_touches_no_state(self):
        channel = _make_channel(1)
        out = channel.burst_rss_dbm(
            "l", 0.0, Pose(Vec3(0.0, 0.0)), Pose(Vec3(1.0, 0.0)),
            np.array([]), 0.0, 0.0,
        )
        assert out.shape == (0,)
        assert channel.active_links == 0

    def test_rejects_non_vector_gains(self):
        channel = _make_channel(1)
        with pytest.raises(ValueError):
            channel.burst_rss_dbm(
                "l", 0.0, Pose(Vec3(0.0, 0.0)), Pose(Vec3(1.0, 0.0)),
                np.zeros((2, 2)), 0.0, 0.0,
            )


class TestLinkEngineBurst:
    @pytest.mark.parametrize("codebook", ["narrow", "wide", "omni"])
    @pytest.mark.parametrize("scenario", ["walk", "rotation"])
    def test_measure_burst_paths_identical(self, codebook, scenario):
        def run(vectorized):
            deployment, mobile = build_cell_edge_deployment(
                11, mobile_codebook=codebook, scenario=scenario
            )
            deployment.links.vectorized = vectorized
            station = deployment.station("cellB")
            measurements = []
            for k in range(40):
                t = k * 0.02
                pose = mobile.pose_at(t)
                measurements.append(
                    deployment.links.measure_burst(
                        station,
                        mobile.mobile_id,
                        pose,
                        mobile.rx_gain_fn(t, pose),
                        k % len(mobile.codebook),
                        t,
                    )
                )
            return measurements

        assert run(vectorized=True) == run(vectorized=False)

    def test_detection_threshold_override(self):
        deployment, mobile = build_cell_edge_deployment(3)
        station = deployment.station("cellA")
        pose = mobile.pose_at(0.0)
        gain_fn = mobile.rx_gain_fn(0.0, pose)
        strict = deployment.links.measure_burst(
            station, mobile.mobile_id, pose, gain_fn, 0, 0.0,
            detection_snr_db=1e9,
        )
        assert not strict.detected

    def test_decode_stream_key_unchanged(self):
        # The rename to _decode_rng must not move the RNG stream:
        # existing seeds would silently reproduce different traces.
        deployment, _ = build_cell_edge_deployment(3)
        assert deployment.links._decode_rng is deployment.rng.stream("uplink")


class TestTraceLevelArtifacts:
    def test_fig2a_campaign_artifacts_byte_identical(self, tmp_path, monkeypatch):
        from repro.campaign.runner import run_campaign
        from repro.experiments.fig2a import fig2a_spec

        spec = fig2a_spec(
            n_trials=2, scenario="walk", deadline_s=0.5,
            codebooks=("narrow",), name="equivalence",
        )
        contents = {}
        for mode in ("scalar", "vectorized"):
            monkeypatch.setenv("REPRO_BURST_PATH", mode)
            out_dir = tmp_path / mode
            run_campaign(spec, out_dir=out_dir)
            cells = sorted((out_dir / "cells").glob("*.json"))
            assert cells, "campaign produced no artifacts"
            contents[mode] = {p.name: p.read_bytes() for p in cells}
        assert contents["scalar"] == contents["vectorized"]

    def test_search_trial_identical_across_paths(self, monkeypatch):
        from repro.experiments.fig2a import run_search_trial

        monkeypatch.setenv("REPRO_BURST_PATH", "scalar")
        scalar = run_search_trial("narrow", scenario="walk", seed=5)
        monkeypatch.setenv("REPRO_BURST_PATH", "vectorized")
        vectorized = run_search_trial("narrow", scenario="walk", seed=5)
        assert scalar == vectorized
