"""Tests for the service-quality (throughput) monitor."""

import pytest

from repro.analysis.throughput import ServiceMonitor
from repro.core.config import SilentTrackerConfig
from repro.core.silent_tracker import SilentTracker
from repro.experiments.scenarios import build_cell_edge_deployment


def monitored_run(scenario="walk", seed=3, duration_s=4.0, config=None):
    deployment, mobile = build_cell_edge_deployment(seed, scenario=scenario)
    protocol = SilentTracker(deployment, mobile, "cellA", config)
    monitor = ServiceMonitor(deployment, mobile, period_s=0.010)
    protocol.start()
    monitor.start()
    deployment.run(duration_s)
    monitor.stop()
    protocol.stop()
    return deployment, mobile, protocol, monitor


class TestServiceMonitor:
    @pytest.fixture(scope="class")
    def run(self):
        return monitored_run()

    def test_samples_on_grid(self, run):
        _, _, _, monitor = run
        samples = monitor.samples
        assert len(samples) == pytest.approx(400, abs=3)
        deltas = [
            b.time_s - a.time_s for a, b in zip(samples, samples[1:])
        ]
        assert all(abs(d - 0.010) < 1e-9 for d in deltas)

    def test_positive_rate_while_connected(self, run):
        _, _, _, monitor = run
        connected = [s for s in monitor.samples if s.serving_cell is not None]
        assert connected
        assert any(s.rate_bps > 1e9 for s in connected)

    def test_mean_rate_positive(self, run):
        _, _, _, monitor = run
        assert monitor.mean_rate_bps() > 0.0

    def test_outage_small_for_soft_handover(self, run):
        _, _, protocol, monitor = run
        if any(r.is_soft for r in protocol.handover_log.records):
            # Make-before-break: outage is a small fraction of the run.
            assert monitor.outage_time_s() < 1.0

    def test_longest_outage_bounded_by_total(self, run):
        _, _, _, monitor = run
        assert monitor.longest_outage_s() <= monitor.outage_time_s() + 1e-9

    def test_serving_cell_recorded_across_handover(self, run):
        _, mobile, protocol, monitor = run
        cells = {s.serving_cell for s in monitor.samples}
        if any(r.complete_s is not None for r in protocol.handover_log.records):
            assert "cellA" in cells and "cellB" in cells

    def test_cannot_start_twice(self):
        deployment, mobile = build_cell_edge_deployment(1)
        monitor = ServiceMonitor(deployment, mobile)
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.start()

    def test_rejects_bad_period(self):
        deployment, mobile = build_cell_edge_deployment(1)
        with pytest.raises(ValueError):
            ServiceMonitor(deployment, mobile, period_s=0.0)

    def test_mean_rate_requires_samples(self):
        deployment, mobile = build_cell_edge_deployment(1)
        monitor = ServiceMonitor(deployment, mobile)
        with pytest.raises(ValueError):
            monitor.mean_rate_bps()
