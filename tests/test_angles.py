"""Unit tests for repro.geometry.angles."""

import math

import pytest

from repro.geometry.angles import (
    angular_distance,
    angular_mean,
    signed_angle_delta,
    wrap_to_pi,
    wrap_to_two_pi,
)


class TestWrapToPi:
    def test_identity_in_range(self):
        assert wrap_to_pi(1.0) == pytest.approx(1.0)

    def test_wraps_above(self):
        assert wrap_to_pi(math.pi + 0.1) == pytest.approx(-math.pi + 0.1)

    def test_wraps_below(self):
        assert wrap_to_pi(-math.pi - 0.1) == pytest.approx(math.pi - 0.1)

    def test_pi_maps_to_pi(self):
        # The convention is (-pi, pi]: +pi stays.
        assert wrap_to_pi(math.pi) == pytest.approx(math.pi)

    def test_minus_pi_maps_to_pi(self):
        assert wrap_to_pi(-math.pi) == pytest.approx(math.pi)

    def test_multiple_turns(self):
        assert wrap_to_pi(5 * math.pi + 0.3) == pytest.approx(-math.pi + 0.3)

    def test_zero(self):
        assert wrap_to_pi(0.0) == 0.0


class TestWrapToTwoPi:
    def test_in_range(self):
        assert wrap_to_two_pi(1.0) == pytest.approx(1.0)

    def test_negative(self):
        assert wrap_to_two_pi(-0.5) == pytest.approx(2 * math.pi - 0.5)

    def test_full_turn(self):
        assert wrap_to_two_pi(2 * math.pi) == pytest.approx(0.0)


class TestSignedDelta:
    def test_simple(self):
        assert signed_angle_delta(1.0, 0.5) == pytest.approx(0.5)

    def test_across_seam(self):
        # Shortest rotation from just-below +pi to just-above -pi is
        # positive and small.
        assert signed_angle_delta(-math.pi + 0.1, math.pi - 0.1) == pytest.approx(
            0.2
        )

    def test_antisymmetric(self):
        delta = signed_angle_delta(0.3, 2.8)
        assert signed_angle_delta(2.8, 0.3) == pytest.approx(-delta)


class TestAngularDistance:
    def test_symmetric(self):
        assert angular_distance(0.3, 2.8) == angular_distance(2.8, 0.3)

    def test_max_is_pi(self):
        assert angular_distance(0.0, math.pi) == pytest.approx(math.pi)

    def test_seam(self):
        assert angular_distance(math.pi - 0.05, -math.pi + 0.05) == pytest.approx(
            0.1
        )

    def test_zero(self):
        assert angular_distance(1.234, 1.234) == 0.0


class TestAngularMean:
    def test_simple_cluster(self):
        assert angular_mean([0.1, -0.1]) == pytest.approx(0.0)

    def test_across_seam(self):
        mean = angular_mean([math.pi - 0.1, -math.pi + 0.1])
        assert abs(wrap_to_pi(mean - math.pi)) < 1e-9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            angular_mean([])

    def test_opposite_angles_undefined(self):
        with pytest.raises(ValueError):
            angular_mean([0.0, math.pi])
