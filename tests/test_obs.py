"""Tests for the observability substrate (``repro.obs``).

Covers the telemetry hub (spans, counters, histograms, summaries,
ambient install), the logging integration, Chrome trace-event export,
the on-disk summary tooling (load/merge/top/diff), the disabled-overhead
gate, and the ``repro obs`` CLI surface.
"""

import io
import json
import logging

import pytest

from repro.cli import main
from repro.obs import telemetry as telemetry_mod
from repro.obs.export import (
    SIM_PID,
    SPAN_PID,
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.log import configure_logging, get_logger, resolve_level
from repro.obs.report import (
    ObsError,
    counter_rows,
    diff_rows,
    load_telemetry,
    merge_summaries,
    sidecar_path,
    top_rows,
    write_telemetry,
)
from repro.obs.telemetry import _NULL_SPAN, Telemetry
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder


def make_summary(**spans):
    """A synthetic telemetry summary: ``name=(count, total_s)``."""
    hub = Telemetry()
    for name, (count, total_s) in spans.items():
        for _ in range(count - 1):
            hub.record_span(name, 0.0, 0.0)
        hub.record_span(name, 0.0, total_s)
    return hub.summary()


class TestTelemetryHub:
    def test_span_aggregates(self):
        hub = Telemetry()
        with hub.span("a"):
            pass
        with hub.span("a"):
            pass
        assert hub.span_counts()["a"] == 2
        assert hub.span_totals()["a"] >= 0.0

    def test_record_span_raw_form(self):
        hub = Telemetry()
        hub.record_span("x", 1.0, 3.5)
        hub.record_span("x", 0.0, 0.5)
        assert hub.span_counts()["x"] == 2
        assert hub.span_totals()["x"] == pytest.approx(3.0)

    def test_nested_spans_record_independently(self):
        hub = Telemetry()
        with hub.span("outer"):
            with hub.span("inner"):
                pass
        assert hub.span_counts() == {"outer": 1, "inner": 1}

    def test_disabled_span_is_shared_noop(self):
        hub = Telemetry(enabled=False)
        assert hub.span("a") is _NULL_SPAN
        assert hub.span("b") is _NULL_SPAN
        with hub.span("a"):
            pass
        assert hub.span_counts() == {}

    def test_disabled_mutators_record_nothing(self):
        hub = Telemetry(enabled=False)
        hub.record_span("s", 0.0, 1.0)
        hub.incr("c")
        hub.observe("h", 3)
        summary = hub.summary()
        assert summary["spans"] == {}
        assert summary["counters"] == {}
        assert summary["hists"] == {}

    def test_counters(self):
        hub = Telemetry()
        hub.incr("c")
        hub.incr("c", 4)
        assert hub.counter("c") == 5
        assert hub.counter("missing") == 0
        view = hub.counters()
        view["c"] = 99
        assert hub.counter("c") == 5

    def test_histograms_bucket_exact_integers(self):
        hub = Telemetry()
        for value in (3, 3, 7):
            hub.observe("batch", value)
        assert hub.histogram("batch") == {3: 2, 7: 1}
        assert hub.histogram("missing") == {}

    def test_record_events_cap_and_dropped_count(self):
        hub = Telemetry(record_events=True, max_events=2)
        for _ in range(5):
            hub.record_span("s", 0.0, 0.1)
        assert len(hub.span_events()) == 2
        assert hub.summary()["dropped_events"] == 3
        # Aggregates are exact regardless of the cap.
        assert hub.span_counts()["s"] == 5

    def test_events_off_by_default(self):
        hub = Telemetry()
        hub.record_span("s", 0.0, 0.1)
        assert hub.span_events() == []

    def test_summary_json_round_trip(self):
        hub = Telemetry()
        hub.record_span("s", 0.0, 0.25)
        hub.incr("c", 2)
        hub.observe("h", 4)
        summary = hub.summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["spans"]["s"] == {"count": 1, "total_s": 0.25}
        assert summary["hists"]["h"] == {"4": 1}

    def test_merge_summary_accumulates(self):
        a = Telemetry()
        a.record_span("s", 0.0, 1.0)
        a.incr("c", 1)
        a.observe("h", 2)
        b = Telemetry()
        b.record_span("s", 0.0, 2.0)
        b.record_span("t", 0.0, 0.5)
        b.incr("c", 4)
        b.observe("h", 2)
        a.merge_summary(b.summary())
        summary = a.summary()
        assert summary["spans"]["s"] == {"count": 2, "total_s": 3.0}
        assert summary["spans"]["t"]["count"] == 1
        assert summary["counters"]["c"] == 5
        assert summary["hists"]["h"] == {"2": 2}

    def test_merge_summaries_helper(self):
        merged = merge_summaries(
            [make_summary(a=(1, 1.0)), make_summary(a=(2, 3.0), b=(1, 0.5))]
        )
        assert merged["spans"]["a"] == {"count": 3, "total_s": 4.0}
        assert merged["spans"]["b"]["count"] == 1

    def test_clear(self):
        hub = Telemetry(record_events=True)
        hub.record_span("s", 0.0, 1.0)
        hub.incr("c")
        hub.clear()
        assert hub.summary()["spans"] == {}
        assert hub.span_events() == []
        assert hub.enabled

    def test_use_restores_previous_hub(self):
        before = telemetry_mod.current()
        inner = Telemetry()
        with telemetry_mod.use(inner) as active:
            assert active is inner
            assert telemetry_mod.current() is inner
        assert telemetry_mod.current() is before

    def test_use_none_means_disabled(self):
        with telemetry_mod.use(None):
            assert telemetry_mod.current() is telemetry_mod.DISABLED


class TestEngineWiring:
    def run_sim(self, hub):
        with telemetry_mod.use(hub):
            sim = Simulator()
            sim.schedule(0.1, lambda: None, label="tick.a")
            sim.schedule(0.2, lambda: None, label="tock")
            sim.run_until(1.0)
        return sim

    def test_enabled_hub_sees_event_spans_and_counters(self):
        hub = Telemetry()
        self.run_sim(hub)
        # Span names bucket by the label's first dotted component.
        assert hub.span_counts()["sim.event.tick"] == 1
        assert hub.span_counts()["sim.event.tock"] == 1
        assert hub.counter("sim.events.tick.a") == 1

    def test_disabled_hub_untouched_and_sim_identical(self):
        hub = Telemetry(enabled=False)
        sim = self.run_sim(hub)
        assert hub.summary()["spans"] == {}
        assert sim.events_fired == 2

    def test_stop_requested_persists_after_run(self):
        sim = Simulator()
        sim.schedule(0.1, sim.stop)
        sim.schedule(0.5, lambda: None)
        sim.run_until(1.0)
        assert sim.stop_requested
        sim.run_until(1.0)
        assert not sim.stop_requested


class TestLogging:
    def test_get_logger_prefixes(self):
        assert get_logger("campaign").name == "repro.campaign"
        assert get_logger("repro.fleet").name == "repro.fleet"
        assert get_logger().name == "repro"

    def test_resolve_level(self):
        assert resolve_level() == logging.WARNING
        assert resolve_level(verbosity=1) == logging.INFO
        assert resolve_level(verbosity=3) == logging.DEBUG
        assert resolve_level("error", verbosity=2) == logging.ERROR

    def test_resolve_level_unknown_name(self):
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("chatty")

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        root = configure_logging(verbosity=1, stream=stream)
        configure_logging(verbosity=1, stream=stream)
        marked = [
            h for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(marked) == 1

    def test_records_reach_the_stream(self):
        stream = io.StringIO()
        configure_logging(verbosity=1, stream=stream)
        get_logger("obs-test").info("hello %d", 7)
        assert "INFO repro.obs-test: hello 7" in stream.getvalue()

    def test_default_level_suppresses_info(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("obs-test").info("quiet")
        assert stream.getvalue() == ""


class TestChromeTraceExport:
    def make_inputs(self):
        hub = Telemetry(record_events=True)
        hub.record_span("phy.burst", 0.0, 0.001)
        hub.record_span("net.batch", 0.002, 0.004)
        trace = TraceRecorder()
        trace.emit(0.5, "fsm.transition", "ue0", edge="B")
        trace.emit(0.8, "rach.msg1", "cellA", result="heard")
        return hub, trace

    def test_span_events_are_complete_events(self):
        hub, trace = self.make_inputs()
        events = chrome_trace_events(hub, trace)
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 2
        by_name = {e["name"]: e for e in spans}
        assert by_name["net.batch"]["pid"] == SPAN_PID
        # ts/dur are microseconds relative to the hub origin.
        assert by_name["net.batch"]["dur"] == pytest.approx(2000.0)

    def test_trace_events_are_instants_per_node(self):
        hub, trace = self.make_inputs()
        events = chrome_trace_events(hub, trace)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 2
        assert {e["pid"] for e in instants} == {SIM_PID}
        tids = {e["tid"] for e in instants}
        assert len(tids) == 2  # one lane per node

    def test_metadata_names_processes(self):
        hub, trace = self.make_inputs()
        events = chrome_trace_events(hub, trace)
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)

    def test_document_shape_and_json_validity(self):
        hub, trace = self.make_inputs()
        document = chrome_trace(hub, trace)
        parsed = json.loads(json.dumps(document))
        assert isinstance(parsed["traceEvents"], list)
        assert parsed["displayTimeUnit"] == "ms"
        assert parsed["otherData"]["telemetry"]["spans"]

    def test_write_chrome_trace_loads_back(self, tmp_path):
        hub, trace = self.make_inputs()
        path = write_chrome_trace(tmp_path / "trace.json", hub, trace)
        parsed = json.loads(path.read_text(encoding="utf-8"))
        assert parsed["traceEvents"]

    def test_no_trace_recorder_is_fine(self, tmp_path):
        hub, _ = self.make_inputs()
        events = chrome_trace_events(hub, None)
        assert not [e for e in events if e["ph"] == "i"]


class TestReportTooling:
    def test_write_and_load_round_trip(self, tmp_path):
        summary = make_summary(a=(2, 1.0))
        path = write_telemetry(summary, tmp_path / "t.json")
        assert load_telemetry(path) == summary

    def test_load_directory_merges_cells(self, tmp_path):
        (tmp_path / "telemetry").mkdir()
        write_telemetry(
            make_summary(a=(1, 1.0)), tmp_path / "telemetry" / "c1.json"
        )
        write_telemetry(
            make_summary(a=(1, 2.0)), tmp_path / "telemetry" / "c2.json"
        )
        merged = load_telemetry(tmp_path)
        assert merged["spans"]["a"] == {"count": 2, "total_s": 3.0}

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ObsError, match="no telemetry artifact"):
            load_telemetry(tmp_path / "absent.json")

    def test_load_telemetry_dir_directly(self, tmp_path):
        # Pointing at the telemetry dir itself (not the campaign root)
        # works too.
        write_telemetry(make_summary(a=(1, 1.0)), tmp_path / "c1.json")
        write_telemetry(make_summary(a=(1, 2.0)), tmp_path / "c2.json")
        merged = load_telemetry(tmp_path)
        assert merged["spans"]["a"] == {"count": 2, "total_s": 3.0}

    def test_load_empty_directory_raises(self, tmp_path):
        with pytest.raises(ObsError, match="no telemetry summaries"):
            load_telemetry(tmp_path)

    def test_load_campaign_root_without_telemetry_raises_friendly(
        self, tmp_path
    ):
        (tmp_path / "manifest.json").write_text("{}", encoding="utf-8")
        with pytest.raises(ObsError, match="no telemetry summaries"):
            load_telemetry(tmp_path)

    def test_corrupt_sidecar_in_directory_warns_not_aborts(
        self, tmp_path, caplog
    ):
        write_telemetry(make_summary(a=(1, 1.0)), tmp_path / "good.json")
        (tmp_path / "torn.json").write_text("{not json", encoding="utf-8")
        # An earlier configure_logging() may have stopped "repro"
        # records propagating to the root logger caplog listens on.
        root = logging.getLogger("repro")
        previous = root.propagate
        root.propagate = True
        try:
            with caplog.at_level("WARNING", logger="repro.obs"):
                merged = load_telemetry(tmp_path)
        finally:
            root.propagate = previous
        # The good sidecar still merges; the corrupt one is counted in
        # exactly one warning line naming the first error.
        assert merged["spans"]["a"] == {"count": 1, "total_s": 1.0}
        warnings = [record for record in caplog.records
                    if "skipped" in record.getMessage()]
        assert len(warnings) == 1
        message = warnings[0].getMessage()
        assert "skipped 1 unreadable telemetry" in message
        assert "torn.json" in message

    def test_all_sidecars_corrupt_raises(self, tmp_path):
        (tmp_path / "a.json").write_text("{not json", encoding="utf-8")
        (tmp_path / "b.json").write_text(
            json.dumps({"results": []}, sort_keys=True), encoding="utf-8"
        )
        with pytest.raises(ObsError, match="all 2 telemetry summaries"):
            load_telemetry(tmp_path)

    def test_load_malformed_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ObsError, match="malformed"):
            load_telemetry(bad)

    def test_load_wrong_shape_raises(self, tmp_path):
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"results": []}), encoding="utf-8")
        with pytest.raises(ObsError, match="not a telemetry summary"):
            load_telemetry(wrong)

    def test_sidecar_path(self):
        assert sidecar_path("out/fleet.json").name == "fleet.telemetry.json"
        assert sidecar_path("artifact").name == "artifact.telemetry.json"

    def test_top_rows_ordered_by_total(self):
        summary = make_summary(cold=(1, 0.1), hot=(10, 5.0))
        headers, rows = top_rows(summary)
        assert headers[0] == "span"
        assert [row[0] for row in rows] == ["hot", "cold"]
        assert rows[0][1] == 10
        # Shares sum to ~100%.
        assert sum(row[4] for row in rows) == pytest.approx(100.0)

    def test_top_rows_limit(self):
        summary = make_summary(a=(1, 3.0), b=(1, 2.0), c=(1, 1.0))
        _, rows = top_rows(summary, limit=2)
        assert [row[0] for row in rows] == ["a", "b"]

    def test_counter_rows(self):
        hub = Telemetry()
        hub.incr("x", 5)
        hub.incr("y", 9)
        _, rows = counter_rows(hub.summary())
        assert rows == [["y", 9], ["x", 5]]

    def test_diff_rows_ratio_and_one_sided(self):
        a = make_summary(shared=(1, 1.0), gone=(1, 0.5))
        b = make_summary(shared=(1, 2.0), new=(1, 0.25))
        _, rows = diff_rows(a, b)
        by_name = {row[0]: row for row in rows}
        assert by_name["shared"][3] == "2.00x"
        assert by_name["gone"][3] == "-"
        assert by_name["new"][1] == "-"


class TestOverheadGate:
    def write_baseline(self, tmp_path, median_s):
        payload = {
            "format": 1,
            "results": [
                {
                    "name": "fig2a.burst_heavy.vectorized",
                    "median_s": median_s,
                    "repeats": 1,
                    "warmup": 0,
                    "meta": {
                        "scenario": "walk",
                        "ssb_per_burst": 36,
                        "duration_s": 0.2,
                        "cells": 3,
                    },
                }
            ],
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_gate_passes_against_generous_baseline(self, tmp_path):
        from repro.bench.obs_gate import run_overhead_gate

        record = run_overhead_gate(
            self.write_baseline(tmp_path, median_s=60.0), tolerance=0.02
        )
        assert record["passed"]
        assert record["ratio"] < 1.0
        assert record["meta"]["duration_s"] == 0.2

    def test_gate_fails_against_impossible_baseline(self, tmp_path):
        from repro.bench.obs_gate import run_overhead_gate

        record = run_overhead_gate(
            self.write_baseline(tmp_path, median_s=1e-9), tolerance=0.02
        )
        assert not record["passed"]

    def test_gate_rejects_negative_tolerance(self, tmp_path):
        from repro.bench.harness import BenchError
        from repro.bench.obs_gate import run_overhead_gate

        with pytest.raises(BenchError, match="non-negative"):
            run_overhead_gate(
                self.write_baseline(tmp_path, 1.0), tolerance=-0.1
            )

    def test_gate_requires_the_case(self, tmp_path):
        from repro.bench.harness import BenchError
        from repro.bench.obs_gate import run_overhead_gate

        path = tmp_path / "empty.json"
        path.write_text(
            json.dumps({"results": [{"name": "other", "median_s": 1.0}]}),
            encoding="utf-8",
        )
        with pytest.raises(BenchError, match="no 'fig2a.burst_heavy"):
            run_overhead_gate(path)


class TestObsCli:
    def test_export_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        status = main(
            [
                "obs", "export", "--users", "2", "--duration", "0.5",
                "--out", str(out),
            ]
        )
        assert status == 0
        parsed = json.loads(out.read_text(encoding="utf-8"))
        phases = {event["ph"] for event in parsed["traceEvents"]}
        assert {"X", "i", "M"} <= phases
        assert parsed["otherData"]["telemetry"]["spans"]
        assert "wrote" in capsys.readouterr().out

    def test_fleet_run_telemetry_sidecar_then_top_and_diff(
        self, tmp_path, capsys
    ):
        out = tmp_path / "fleet.json"
        status = main(
            [
                "fleet", "run", "--users", "2", "--duration", "0.5",
                "--telemetry", "--quiet", "--out", str(out),
            ]
        )
        assert status == 0
        side = tmp_path / "fleet.telemetry.json"
        assert side.exists()
        # The artifact itself carries no telemetry.
        artifact = json.loads(out.read_text(encoding="utf-8"))
        assert "telemetry" not in artifact
        capsys.readouterr()
        assert main(["obs", "top", str(side), "--counters"]) == 0
        assert "hottest spans" in capsys.readouterr().out
        assert main(["obs", "diff", str(side), str(side)]) == 0
        assert "1.00x" in capsys.readouterr().out
        # summarize folds the sidecar in...
        assert main(["fleet", "summarize", "--artifact", str(out)]) == 0
        assert "telemetry sidecar" in capsys.readouterr().out
        # ...and stays silent once it is gone.
        side.unlink()
        assert main(["fleet", "summarize", "--artifact", str(out)]) == 0
        assert "telemetry sidecar" not in capsys.readouterr().out

    def test_campaign_run_telemetry_sidecars(self, tmp_path, capsys):
        out = tmp_path / "camp"
        status = main(
            [
                "campaign", "run", "--experiment", "search",
                "--scenarios", "walk", "--protocols", "narrow",
                "--seeds", "1", "--quiet", "--telemetry",
                "--out", str(out),
            ]
        )
        assert status == 0
        sidecars = list((out / "telemetry").glob("*.json"))
        assert len(sidecars) == 1
        capsys.readouterr()
        assert main(["obs", "top", str(out)]) == 0
        assert "hottest spans" in capsys.readouterr().out
        assert main(["campaign", "summarize", "--out", str(out)]) == 0
        assert "telemetry sidecar" in capsys.readouterr().out

    def test_obs_top_missing_artifact_exits_2(self, tmp_path, capsys):
        status = main(["obs", "top", str(tmp_path / "nope.json")])
        assert status == 2
        assert "error:" in capsys.readouterr().err

    def test_gate_cli_failure_exits_1(self, tmp_path, capsys):
        baseline = TestOverheadGate().write_baseline(tmp_path, median_s=1e-9)
        status = main(
            ["obs", "gate", "--baseline", str(baseline), "--repeats", "1"]
        )
        assert status == 1
        assert "OVERHEAD REGRESSION" in capsys.readouterr().err
