"""Unit tests for the correlated shadowing process."""

import numpy as np
import pytest

from repro.phy.shadowing import ShadowingProcess


def make(sigma=3.0, decorr=1.5, seed=1):
    return ShadowingProcess(sigma, decorr, np.random.default_rng(seed))


class TestBasics:
    def test_zero_sigma_is_zero(self):
        process = ShadowingProcess(0.0, 1.0, np.random.default_rng(1))
        assert process.sample_db(0.0) == 0.0
        assert process.sample_db(100.0) == 0.0

    def test_deterministic_given_rng(self):
        a = make(seed=5)
        b = make(seed=5)
        for d in (0.0, 0.5, 1.0, 3.0):
            assert a.sample_db(d) == b.sample_db(d)

    def test_rejects_backwards_distance(self):
        process = make()
        process.sample_db(5.0)
        with pytest.raises(ValueError):
            process.sample_db(4.0)

    def test_zero_step_keeps_value(self):
        process = make()
        first = process.sample_db(2.0)
        second = process.sample_db(2.0)
        assert second == pytest.approx(first)

    def test_reset_forgets(self):
        process = make()
        process.sample_db(3.0)
        process.reset()
        # After reset a sample at an 'earlier' distance is legal again.
        process.sample_db(0.0)

    def test_rejects_bad_params(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            ShadowingProcess(-1.0, 1.0, rng)
        with pytest.raises(ValueError):
            ShadowingProcess(1.0, 0.0, rng)


class TestStatistics:
    def test_marginal_std_matches_sigma(self):
        """Widely-spaced samples are nearly i.i.d. N(0, sigma^2)."""
        process = make(sigma=3.0, decorr=1.0, seed=7)
        samples = [process.sample_db(20.0 * k) for k in range(4000)]
        assert np.std(samples) == pytest.approx(3.0, rel=0.1)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.2)

    def test_short_steps_highly_correlated(self):
        process = make(sigma=3.0, decorr=10.0, seed=3)
        previous = process.sample_db(0.0)
        max_step = 0.0
        for k in range(1, 200):
            current = process.sample_db(0.01 * k)
            max_step = max(max_step, abs(current - previous))
            previous = current
        # With decorr 10 m and 1 cm steps the innovation is tiny.
        assert max_step < 0.5

    def test_correlation_decays_with_distance(self):
        """Lag-1 correlation at small spacing beats large spacing."""

        def lag1_corr(spacing, seed):
            process = make(sigma=3.0, decorr=1.5, seed=seed)
            samples = [process.sample_db(spacing * k) for k in range(3000)]
            x = np.array(samples)
            return np.corrcoef(x[:-1], x[1:])[0, 1]

        assert lag1_corr(0.2, 11) > lag1_corr(5.0, 11) + 0.3

    def test_theoretical_lag_correlation(self):
        """rho(d) ~= exp(-d / decorr)."""
        spacing, decorr = 1.0, 2.0
        process = ShadowingProcess(3.0, decorr, np.random.default_rng(9))
        samples = [process.sample_db(spacing * k) for k in range(6000)]
        x = np.array(samples)
        rho = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert rho == pytest.approx(np.exp(-spacing / decorr), abs=0.07)
