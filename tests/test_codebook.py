"""Unit tests for beam codebooks."""

import math

import pytest

from repro.phy.antenna import GaussianBeamPattern
from repro.phy.codebook import Beam, Codebook, HierarchicalCodebook


class TestUniformConstruction:
    def test_beam_count_from_beamwidth(self):
        assert len(Codebook.uniform_azimuth(20.0)) == 18
        assert len(Codebook.uniform_azimuth(60.0)) == 6
        assert len(Codebook.uniform_azimuth(90.0)) == 4

    def test_boresights_sorted_and_distinct(self):
        codebook = Codebook.uniform_azimuth(30.0)
        boresights = [b.boresight_rad for b in codebook]
        assert boresights == sorted(boresights)
        assert len(set(boresights)) == len(boresights)

    def test_uniform_spacing(self):
        codebook = Codebook.uniform_azimuth(45.0)
        spacings = [
            codebook[i + 1].boresight_rad - codebook[i].boresight_rad
            for i in range(len(codebook) - 1)
        ]
        for spacing in spacings:
            assert spacing == pytest.approx(math.radians(45.0))

    def test_sector_coverage(self):
        codebook = Codebook.uniform_azimuth(30.0, coverage_deg=120.0)
        assert len(codebook) == 4
        for beam in codebook:
            assert abs(beam.boresight_rad) <= math.radians(60.0)

    def test_crossover_at_minus_3db(self):
        """Adjacent beams cross at their -3 dB points by construction."""
        codebook = Codebook.uniform_azimuth(20.0)
        a, b = codebook[0], codebook[1]
        midpoint = (a.boresight_rad + b.boresight_rad) / 2
        assert a.gain_dbi(midpoint) == pytest.approx(
            a.pattern.peak_gain_dbi - 3.0, abs=0.01
        )
        assert a.gain_dbi(midpoint) == pytest.approx(b.gain_dbi(midpoint))

    def test_rejects_bad_beamwidth(self):
        with pytest.raises(ValueError):
            Codebook.uniform_azimuth(0.0)
        with pytest.raises(ValueError):
            Codebook.uniform_azimuth(400.0)

    def test_indices_validated(self):
        pattern = GaussianBeamPattern(math.radians(60))
        with pytest.raises(ValueError):
            Codebook([Beam(1, 0.0, pattern)])  # must start at 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Codebook([])


class TestTopology:
    def test_neighbors_ring(self):
        codebook = Codebook.uniform_azimuth(60.0)  # 6 beams
        assert codebook.neighbors(0) == (5, 1)
        assert codebook.neighbors(5) == (4, 0)

    def test_adjacent_indices(self):
        codebook = Codebook.uniform_azimuth(60.0)
        assert codebook.adjacent_indices(2) == [1, 3]

    def test_adjacent_indices_omni_empty(self):
        assert Codebook.omni().adjacent_indices(0) == []

    def test_two_beam_codebook_single_neighbor(self):
        codebook = Codebook.uniform_azimuth(180.0)
        assert len(codebook) == 2
        assert codebook.adjacent_indices(0) == [1]

    def test_hop_distance(self):
        codebook = Codebook.uniform_azimuth(60.0)  # 6 beams
        assert codebook.hop_distance(0, 1) == 1
        assert codebook.hop_distance(0, 5) == 1
        assert codebook.hop_distance(0, 3) == 3
        assert codebook.hop_distance(2, 2) == 0

    def test_out_of_range_index(self):
        codebook = Codebook.uniform_azimuth(60.0)
        with pytest.raises(IndexError):
            codebook.neighbors(6)


class TestSelection:
    def test_best_beam_towards_boresight(self):
        codebook = Codebook.uniform_azimuth(20.0)
        for beam in codebook:
            assert codebook.best_beam_towards(beam.boresight_rad) is beam

    def test_best_beam_wraps(self):
        codebook = Codebook.uniform_azimuth(20.0)
        best = codebook.best_beam_towards(math.pi)
        # Near the seam the best beam's boresight is within half a
        # beamwidth of the target.
        delta = abs(
            math.remainder(best.boresight_rad - math.pi, 2 * math.pi)
        )
        assert delta <= math.radians(10.0) + 1e-9

    def test_gain_peaks_on_best_beam(self):
        codebook = Codebook.uniform_azimuth(30.0)
        azimuth = 0.7
        best = codebook.best_beam_towards(azimuth)
        for beam in codebook:
            assert beam.gain_dbi(azimuth) <= best.gain_dbi(azimuth) + 1e-9

    def test_sweep_order_visits_all(self):
        codebook = Codebook.uniform_azimuth(30.0)
        order = codebook.sweep_order(start=5)
        assert sorted(order) == list(range(len(codebook)))
        assert order[0] == 5


class TestOmni:
    def test_singleton(self):
        codebook = Codebook.omni()
        assert len(codebook) == 1
        assert codebook.is_omni

    def test_narrow_not_omni(self):
        assert not Codebook.uniform_azimuth(20.0).is_omni

    def test_flat_gain(self):
        codebook = Codebook.omni(gain_dbi=1.0)
        assert codebook.gain_dbi(0, 2.5) == 1.0


class TestHierarchical:
    def test_children_partition_fine_tier(self):
        coarse = Codebook.uniform_azimuth(90.0)
        fine = Codebook.uniform_azimuth(22.5)
        hier = HierarchicalCodebook(coarse, fine)
        all_children = []
        for i in range(len(coarse)):
            all_children.extend(hier.children(i))
        assert sorted(all_children) == list(range(len(fine)))

    def test_search_cost_less_than_exhaustive(self):
        coarse = Codebook.uniform_azimuth(90.0)
        fine = Codebook.uniform_azimuth(10.0)
        hier = HierarchicalCodebook(coarse, fine)
        assert hier.search_cost(0) < len(fine)

    def test_rejects_inverted_tiers(self):
        with pytest.raises(ValueError):
            HierarchicalCodebook(
                Codebook.uniform_azimuth(10.0), Codebook.uniform_azimuth(90.0)
            )
