"""Determinism contract of the cross-user batched burst path.

Three layers of evidence, mirroring the PR 2 scalar/vectorized suite:

* grid micro-equivalence — the (users x dwells) batch APIs are
  bit-identical to stacking their per-mobile counterparts and leave
  every RNG stream in the same state;
* fleet-run equivalence — a fleet artifact is byte-identical across
  ``REPRO_FLEET_PATH=scalar|batch`` and across campaign worker counts;
* sharded equivalence — a sharded run's merged artifact is
  byte-identical to the unsharded run across shard counts, worker
  counts and burst paths (the PR 7 correctness pin);
* fresh-process repeatability — the same spec produces the same bytes
  in a brand-new interpreter.
"""

import json
import math
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.bench.harness import env_override
from repro.campaign.spec import canonical_json
from repro.fleet import FleetSpec, UserProfile, run_fleet_trial
from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.net.base_station import BaseStation
from repro.net.deployment import Deployment, DeploymentConfig
from repro.phy.channel import Channel, ChannelConfig
from repro.phy.codebook import Codebook
from repro.sim.rng import RngRegistry

SRC = str(Path(__file__).resolve().parent.parent / "src")


def fleet_spec(n_users=10, seed=11, duration_s=1.5):
    return FleetSpec(
        "equiv",
        n_users=n_users,
        profiles=(
            UserProfile("walkers", weight=0.6, scenario="walk",
                        start_jitter_s=0.2),
            UserProfile("spinners", weight=0.25, scenario="rotation"),
            UserProfile("drivers", weight=0.15, scenario="vehicular",
                        codebook="wide"),
        ),
        seed=seed,
        duration_s=duration_s,
    )


def run_with_path(mode, spec=None):
    with env_override("REPRO_FLEET_PATH", mode):
        return run_fleet_trial(spec or fleet_spec())


class TestGridMicroEquivalence:
    def test_codebook_grid_rows_bit_identical(self):
        codebook = Codebook.uniform_azimuth(20.0)
        azimuths = [0.0, 0.7, -2.1, math.pi]
        grid = codebook.gains_grid_dbi(azimuths)
        assert grid.shape == (4, len(codebook))
        for row, azimuth in zip(grid, azimuths):
            assert np.array_equal(row, codebook.gains_dbi(azimuth))

    def test_codebook_grid_subset(self):
        codebook = Codebook.uniform_azimuth(30.0)
        indices = [5, 0, 3]
        grid = codebook.gains_grid_dbi([0.3, -0.4], indices)
        for row, azimuth in zip(grid, [0.3, -0.4]):
            assert np.array_equal(row, codebook.gains_dbi(azimuth, indices))

    def test_station_grid_rows_bit_identical(self):
        station = BaseStation(
            "cellA", Pose(Vec3(0.0, 10.0), heading=-math.pi / 2.0),
            Codebook.uniform_azimuth(20.0),
        )
        bearings = [-0.5, 0.0, 1.2]
        grid = station.tx_gains_grid_dbi(bearings)
        for row, bearing in zip(grid, bearings):
            assert np.array_equal(row, station.tx_gains_dbi(bearing))

    def test_channel_grid_bit_identical_and_stream_equivalent(self):
        def make_channel():
            return Channel(ChannelConfig(), RngRegistry(5))

        tx_pose = Pose(Vec3(0.0, 10.0))
        poses = [Pose(Vec3(4.0 + k, 0.0), heading=0.1 * k) for k in range(3)]
        links = [f"cellA|ue{k}" for k in range(3)]
        tx_gains = np.linspace(-5.0, 12.0, 18)
        grid_channel = make_channel()
        grid = grid_channel.burst_rss_grid_dbm(
            links, 0.25, tx_pose, poses,
            np.tile(tx_gains, (3, 1)), np.array([1.0, 2.0, 3.0]), 0.0,
        )
        loop_channel = make_channel()
        for u, (link, pose, rx_gain) in enumerate(
            zip(links, poses, [1.0, 2.0, 3.0])
        ):
            row = loop_channel.burst_rss_dbm(
                link, 0.25, tx_pose, pose, tx_gains, rx_gain, 0.0
            )
            assert np.array_equal(grid[u], row)
        # Both channels drew identically from every stream.
        for name in loop_channel._rng_registry.stream_names():
            assert (
                grid_channel._rng_registry.stream(name).bit_generator.state
                == loop_channel._rng_registry.stream(name).bit_generator.state
            )

    def test_link_engine_batch_matches_scalar_loop(self):
        def make_deployment():
            deployment = Deployment(DeploymentConfig(master_seed=9))
            station = deployment.add_station(
                BaseStation(
                    "cellA", Pose(Vec3(0.0, 10.0), heading=-math.pi / 2.0),
                    Codebook.uniform_azimuth(20.0), tx_power_dbm=0.0,
                )
            )
            return deployment, station

        rx_codebook = Codebook.uniform_azimuth(20.0)
        poses = [Pose(Vec3(6.0 + 2.0 * k, 0.0), heading=0.2 * k) for k in range(4)]
        requests = [
            (
                f"ue{k}",
                poses[k],
                lambda beam, az, p=poses[k]: rx_codebook.gain_dbi(
                    beam, p.world_to_body(az)
                ),
                k % len(rx_codebook),
            )
            for k in range(4)
        ]
        batch_dep, batch_station = make_deployment()
        batched = batch_dep.links.measure_burst_batch(
            batch_station, requests, 0.1
        )
        loop_dep, loop_station = make_deployment()
        looped = [
            loop_dep.links.measure_burst(
                loop_station, mobile_id, pose, gain_fn, rx_beam, 0.1
            )
            for mobile_id, pose, gain_fn, rx_beam in requests
        ]
        assert batched == looped

    def test_empty_request_list(self):
        deployment = Deployment(DeploymentConfig(master_seed=1))
        station = deployment.add_station(
            BaseStation("cellA", Pose(Vec3(0.0, 10.0)),
                        Codebook.uniform_azimuth(30.0))
        )
        assert deployment.links.measure_burst_batch(station, [], 0.0) == []


class TestFleetPathEquivalence:
    def test_scalar_and_batch_artifacts_byte_identical(self):
        scalar = canonical_json(run_with_path("scalar").to_dict())
        batch = canonical_json(run_with_path("batch").to_dict())
        assert scalar == batch

    def test_env_var_controls_deployment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_PATH", "scalar")
        assert Deployment().fleet_batch is False
        monkeypatch.setenv("REPRO_FLEET_PATH", "batch")
        assert Deployment().fleet_batch is True
        monkeypatch.delenv("REPRO_FLEET_PATH")
        assert Deployment().fleet_batch is True

    def test_repeat_in_process_identical(self):
        first = canonical_json(run_fleet_trial(fleet_spec()).to_dict())
        second = canonical_json(run_fleet_trial(fleet_spec()).to_dict())
        assert first == second


class TestCampaignWorkerEquivalence:
    def test_worker_counts_byte_identical(self, tmp_path):
        from repro.campaign.runner import run_campaign
        from repro.fleet.experiment import fleet_campaign_spec

        spec = fleet_campaign_spec(
            n_users=4, scenarios=("walk",), mixes=("uniform", "mobility-blend"),
            seeds=2, duration_s=1.0,
        )
        cell_bytes = {}
        for workers in (1, 2):
            out = tmp_path / f"w{workers}"
            run_campaign(spec, out_dir=out, workers=workers)
            cells = sorted((out / "cells").glob("*.json"))
            assert len(cells) == spec.n_cells
            cell_bytes[workers] = {p.name: p.read_bytes() for p in cells}
        assert cell_bytes[1] == cell_bytes[2]


class TestTelemetryByteIdentity:
    """Wall-clock observability must never leak into artifacts."""

    def test_fleet_artifact_identical_across_telemetry_modes(self):
        from repro.obs import Telemetry
        from repro.obs import telemetry as telemetry_mod

        spec_args = dict(n_users=6, seed=13, duration_s=1.0)
        ambient = canonical_json(
            run_fleet_trial(fleet_spec(**spec_args)).to_dict()
        )
        with telemetry_mod.use(telemetry_mod.DISABLED):
            disabled = canonical_json(
                run_fleet_trial(fleet_spec(**spec_args)).to_dict()
            )
        with telemetry_mod.use(Telemetry()) as hub:
            enabled = canonical_json(
                run_fleet_trial(fleet_spec(**spec_args)).to_dict()
            )
        with telemetry_mod.use(Telemetry(record_events=True)):
            recording = canonical_json(
                run_fleet_trial(fleet_spec(**spec_args)).to_dict()
            )
        assert disabled == ambient
        assert enabled == ambient
        assert recording == ambient
        # The enabled run did actually observe the hot paths.
        assert hub.counter("phy.bursts_measured") > 0
        assert "fleet.run" in hub.span_totals()

    def test_campaign_cells_identical_with_and_without_telemetry(self, tmp_path):
        from repro.campaign.runner import run_campaign
        from repro.fleet.experiment import fleet_campaign_spec

        spec = fleet_campaign_spec(
            n_users=3, scenarios=("walk",), mixes=("uniform",),
            seeds=2, duration_s=1.0,
        )
        cell_bytes = {}
        for label, flag in (("plain", False), ("telemetry", True)):
            out = tmp_path / label
            result = run_campaign(spec, out_dir=out, telemetry=flag)
            cells = sorted((out / "cells").glob("*.json"))
            assert len(cells) == spec.n_cells
            cell_bytes[label] = {p.name: p.read_bytes() for p in cells}
            assert (len(result.telemetry) == spec.n_cells) is flag
        assert cell_bytes["plain"] == cell_bytes["telemetry"]

    def test_telemetry_sidecars_do_not_affect_resume(self, tmp_path):
        from repro.campaign.runner import run_campaign
        from repro.campaign.store import ArtifactStore
        from repro.fleet.experiment import fleet_campaign_spec

        spec = fleet_campaign_spec(
            n_users=3, scenarios=("walk",), mixes=("uniform",),
            seeds=1, duration_s=1.0,
        )
        out = tmp_path / "camp"
        run_campaign(spec, out_dir=out, telemetry=True)
        store = ArtifactStore(out)
        assert store.completed_ids() == {
            cell.cell_id for cell in spec.iter_cells()
        }
        resumed = run_campaign(spec, out_dir=out, telemetry=True)
        assert resumed.executed == 0
        assert resumed.skipped == spec.n_cells
        # The stored sidecars still surface on the resumed result.
        assert len(resumed.telemetry) == spec.n_cells


class TestProgressEquivalence:
    """A progress reporter slices the run but never changes a byte."""

    def test_fleet_artifact_identical_with_progress_reporter(self):
        from repro.fleet.progress import FleetProgress

        class Recording(FleetProgress):
            def __init__(self):
                self.builds = []
                self.runs = []
                self.started = None
                self.finished = None

            def on_build(self, built, total):
                self.builds.append((built, total))

            def on_start(self, users, duration_s):
                self.started = (users, duration_s)

            def on_run(self, sim_now_s, duration_s):
                self.runs.append((sim_now_s, duration_s))

            def on_finish(self, users, elapsed_s):
                self.finished = users

        silent = canonical_json(run_fleet_trial(fleet_spec()).to_dict())
        reporter = Recording()
        reported = canonical_json(
            run_fleet_trial(fleet_spec(), reporter).to_dict()
        )
        assert reported == silent
        spec = fleet_spec()
        assert reporter.builds == [
            (k + 1, spec.n_users) for k in range(spec.n_users)
        ]
        assert reporter.started == (spec.n_users, spec.duration_s)
        assert reporter.finished == spec.n_users
        # The run phase ends exactly on the spec duration.
        assert reporter.runs[-1][0] == spec.duration_s


class TestShardedEquivalence:
    """Sharding is an execution detail: merged bytes == unsharded bytes."""

    @pytest.fixture(scope="class")
    def unsharded_bytes(self):
        return canonical_json(run_fleet_trial(fleet_spec()).to_dict())

    @pytest.mark.parametrize("path", ["batch", "scalar"])
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_matrix_byte_identical(
        self, shards, workers, path, unsharded_bytes, tmp_path
    ):
        from repro.fleet import run_fleet_sharded

        with env_override("REPRO_FLEET_PATH", path):
            expected = canonical_json(run_fleet_trial(fleet_spec()).to_dict())
            out = tmp_path / f"s{shards}w{workers}{path}"
            result = run_fleet_sharded(
                fleet_spec(), shards, out_dir=out, workers=workers
            )
        # Byte-identical regardless of partitioning and pool size...
        merged = (out / "fleet.json").read_text()[:-1]
        assert merged == expected
        assert canonical_json(result.merged.to_dict()) == expected
        # ...and regardless of the burst-delivery path.
        assert expected == unsharded_bytes

    def test_shard_artifacts_partition_users(self, tmp_path):
        from repro.fleet import partition_fleet, run_fleet_sharded

        spec = fleet_spec()
        run_fleet_sharded(spec, 3, out_dir=tmp_path, workers=1)
        shard_users = []
        for shard in partition_fleet(spec, 3):
            record = json.loads(
                (tmp_path / "shards" / f"{shard.shard_hash}.json").read_text()
            )
            shard_users.extend(u["user_id"] for u in record["users"])
        assert sorted(shard_users) == [
            f"ue{k:05d}" for k in range(spec.n_users)
        ]

    def test_resume_uses_existing_shards(self, tmp_path):
        from repro.fleet import run_fleet_sharded

        first = run_fleet_sharded(fleet_spec(), 4, out_dir=tmp_path)
        assert first.executed == 4 and first.skipped == 0
        again = run_fleet_sharded(fleet_spec(), 4, out_dir=tmp_path)
        assert again.executed == 0 and again.skipped == 4
        assert canonical_json(again.merged.to_dict()) == canonical_json(
            first.merged.to_dict()
        )

    def test_cli_sharded_fresh_process_identical(self, tmp_path):
        """Fresh-interpreter sharded runs repeat byte-for-byte and match
        the unsharded CLI artifact."""
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        flags = ["--users", "6", "--duration", "1.0", "--seed", "33"]
        merged = []
        for run in range(2):
            out = tmp_path / f"sharded-{run}"
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", "fleet", "run", *flags,
                    "--shards", "3", "--workers", "2", "--out", str(out),
                    "--quiet",
                ],
                env=env, capture_output=True, text=True,
            )
            assert result.returncode == 0, result.stderr
            merged.append((out / "fleet.json").read_bytes())
        assert merged[0] == merged[1]
        flat = tmp_path / "flat.json"
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "fleet", "run", *flags,
                "--out", str(flat), "--quiet",
            ],
            env=env, capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
        assert flat.read_bytes() == merged[0]


class TestFreshProcessRepeat:
    def test_cli_artifact_byte_identical_across_processes(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        artifacts = []
        for run in range(2):
            out = tmp_path / f"fleet-{run}.json"
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", "fleet", "run",
                    "--users", "4", "--duration", "1.0", "--seed", "21",
                    "--out", str(out),
                ],
                env=env, capture_output=True, text=True,
            )
            assert result.returncode == 0, result.stderr
            artifacts.append(out.read_bytes())
        assert artifacts[0] == artifacts[1]
        # And the in-process runner agrees with the subprocess bytes.
        from repro.fleet.experiment import fleet_spec_for_cell

        spec = fleet_spec_for_cell(
            "uniform", scenario="walk", seed=21, n_users=4, duration_s=1.0,
            name="fleet",
        )
        in_process = canonical_json(run_fleet_trial(spec).to_dict()) + "\n"
        assert in_process.encode("utf-8") == artifacts[0]
