"""Tests for the live run monitor (``repro.obs.monitor``).

Heartbeat throttling and stall thresholds run against injected fake
clocks (no sleeps); the byte-identity section pins the monitor's core
contract — artifacts are unchanged with monitoring on or off — both
in-process (sharded, multi-worker) and through a fresh-process CLI.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.harness import env_override
from repro.fleet import FleetSpec, UserProfile
from repro.fleet.progress import FleetProgress, ShardProgressAggregator
from repro.fleet.runner import run_fleet_sharded
from repro.obs.monitor import HeartbeatEmitter, MonitorConfig, StallDetector
from repro.util.switches import SwitchError, switch_float

SRC = str(Path(__file__).resolve().parent.parent / "src")


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestMonitorConfig:
    def test_defaults_from_switch_table(self):
        config = MonitorConfig.from_switches()
        assert config.heartbeat_s == 5.0
        assert config.stall_s == 30.0

    def test_switch_overrides(self):
        with env_override("REPRO_HEARTBEAT_S", "0.5"):
            with env_override("REPRO_STALL_S", "7"):
                config = MonitorConfig.from_switches()
        assert config.heartbeat_s == 0.5
        assert config.stall_s == 7.0

    def test_switch_float_rejects_garbage(self):
        with env_override("REPRO_STALL_S", "soon"):
            with pytest.raises(SwitchError, match="must be a number"):
                switch_float("REPRO_STALL_S")

    def test_switch_float_rejects_nonpositive(self):
        with env_override("REPRO_HEARTBEAT_S", "0"):
            with pytest.raises(SwitchError, match="must be > 0"):
                switch_float("REPRO_HEARTBEAT_S")


class TestHeartbeatEmitter:
    def _emitter(self, clock, interval_s=5.0, posted=None):
        posted = posted if posted is not None else []
        emitter = HeartbeatEmitter(
            posted.append, shard_index=3, interval_s=interval_s,
            clock=clock, sampler=lambda: {"rss_kb": 2048, "cpu_s": 1.5},
        )
        return emitter, posted

    def test_throttled_to_interval(self):
        clock = FakeClock()
        emitter, posted = self._emitter(clock)
        assert not emitter.maybe_beat("build")
        clock.advance(4.9)
        assert not emitter.maybe_beat("build")
        clock.advance(0.2)
        assert emitter.maybe_beat("build")
        assert not emitter.maybe_beat("build")  # throttle re-armed
        assert len(posted) == 1

    def test_beat_payload(self):
        clock = FakeClock()
        emitter, posted = self._emitter(clock)
        emitter.events_fn = lambda: 1234
        clock.advance(6.0)
        assert emitter.maybe_beat("run", sim_now_s=2.5, duration_s=10.0)
        kind, shard_index, beat = posted[0]
        assert (kind, shard_index) == ("hb", 3)
        assert beat == {
            "phase": "run", "sim_now_s": 2.5, "duration_s": 10.0,
            "events": 1234, "rss_kb": 2048, "cpu_s": 1.5,
        }

    def test_events_cumulative_across_beats(self):
        clock = FakeClock()
        emitter, posted = self._emitter(clock)
        counter = iter([100, 350])
        emitter.events_fn = lambda: next(counter)
        for _ in range(2):
            clock.advance(5.0)
            assert emitter.maybe_beat("run")
        assert [event[2]["events"] for event in posted] == [100, 350]

    def test_no_events_key_when_unbound(self):
        clock = FakeClock()
        emitter, posted = self._emitter(clock)
        clock.advance(5.0)
        emitter.maybe_beat("build")
        assert "events" not in posted[0][2]


class TestStallDetector:
    def test_threshold_crossing(self):
        clock = FakeClock()
        stall = StallDetector(30.0, clock=clock)
        stall.watch(3)
        clock.advance(29.0)
        assert stall.newly_stalled() == []
        clock.advance(2.0)
        assert stall.newly_stalled() == [(3, 31.0)]

    def test_fires_once_per_episode(self):
        clock = FakeClock()
        stall = StallDetector(30.0, clock=clock)
        stall.watch(0)
        clock.advance(31.0)
        assert stall.newly_stalled() == [(0, 31.0)]
        clock.advance(100.0)
        assert stall.newly_stalled() == []  # same silence episode

    def test_activity_rearms(self):
        clock = FakeClock()
        stall = StallDetector(30.0, clock=clock)
        stall.watch(0)
        clock.advance(31.0)
        assert stall.newly_stalled() == [(0, 31.0)]
        stall.note(0)  # shard revived
        clock.advance(29.0)
        assert stall.newly_stalled() == []
        clock.advance(2.0)
        assert stall.newly_stalled() == [(0, 31.0)]

    def test_note_before_threshold_resets_clock(self):
        clock = FakeClock()
        stall = StallDetector(30.0, clock=clock)
        stall.watch(0)
        clock.advance(29.0)
        stall.note(0)
        clock.advance(29.0)
        assert stall.newly_stalled() == []

    def test_unwatch_and_multiple_keys_sorted(self):
        clock = FakeClock()
        stall = StallDetector(30.0, clock=clock)
        for key in (2, 0, 1):
            stall.watch(key)
        assert stall.watched() == (0, 1, 2)
        stall.unwatch(1)
        clock.advance(31.0)
        assert stall.newly_stalled() == [(0, 31.0), (2, 31.0)]


class RecordingProgress(FleetProgress):
    def __init__(self):
        self.heartbeats = []
        self.stalls = []

    def on_heartbeat(self, shard_index, beat):
        self.heartbeats.append((shard_index, dict(beat)))

    def on_stall(self, shard_index, silent_s):
        self.stalls.append(shard_index)


def _beat(events, phase="run"):
    return {"phase": phase, "sim_now_s": 1.0, "duration_s": 2.0,
            "events": events, "rss_kb": 1024, "cpu_s": 0.1}


class TestAggregatorMerge:
    def test_heartbeats_forwarded_per_shard(self):
        inner = RecordingProgress()
        aggregator = ShardProgressAggregator(inner, n_users=4,
                                             duration_s=2.0)
        aggregator.handle(("hb", 1, _beat(10)))
        aggregator.handle(("hb", 0, _beat(20)))
        assert inner.heartbeats == [(1, _beat(10)), (0, _beat(20))]

    def test_merge_is_interleaving_insensitive(self):
        # Cumulative payloads: any cross-shard interleaving leaves each
        # shard's own beat sequence intact, so the driver-side fold
        # (rates from successive per-shard beats) sees identical input.
        events = [("hb", 0, _beat(10)), ("hb", 0, _beat(30)),
                  ("hb", 1, _beat(5)), ("hb", 1, _beat(50))]
        interleavings = (
            events,
            [events[0], events[2], events[1], events[3]],
            [events[2], events[3], events[0], events[1]],
        )
        folded = []
        for order in interleavings:
            inner = RecordingProgress()
            aggregator = ShardProgressAggregator(inner, 4, 2.0)
            for event in order:
                aggregator.handle(event)
            per_shard = {}
            for shard_index, beat in inner.heartbeats:
                per_shard.setdefault(shard_index, []).append(
                    beat["events"])
            folded.append(per_shard)
        assert folded[0] == folded[1] == folded[2] == \
            {0: [10, 30], 1: [5, 50]}

    def test_events_note_liveness_and_tick_surfaces_stalls(self):
        clock = FakeClock()
        stall = StallDetector(30.0, clock=clock)
        inner = RecordingProgress()
        aggregator = ShardProgressAggregator(inner, 4, 2.0, stall=stall)
        stall.watch(0)
        stall.watch(1)
        clock.advance(20.0)
        aggregator.handle(("run", 0, 1.0, 2.0))  # shard 0 shows life
        clock.advance(15.0)
        aggregator.tick()
        assert inner.stalls == [1]  # shard 0 revived at t=20, shard 1 silent
        aggregator.shard_finished(0)  # finished shards leave the watch
        aggregator.shard_finished(1)
        clock.advance(100.0)
        aggregator.tick()
        assert inner.stalls == [1]


def _fleet_spec(n_users=6, seed=11, duration_s=0.6):
    return FleetSpec(
        "monitor-equiv",
        n_users=n_users,
        profiles=(
            UserProfile("walkers", weight=0.7, scenario="walk"),
            UserProfile("spinners", weight=0.3, scenario="rotation"),
        ),
        seed=seed,
        duration_s=duration_s,
    )


def _sharded_bytes(tmp_path, label, monitor, workers=1):
    out = tmp_path / label
    run_fleet_sharded(
        _fleet_spec(), n_shards=3, out_dir=out, workers=workers,
        monitor=monitor, progress=RecordingProgress() if monitor else None,
    )
    return (out / "fleet.json").read_bytes()


class TestByteIdentity:
    def test_sharded_artifact_identical_monitor_on_off(self, tmp_path):
        with env_override("REPRO_HEARTBEAT_S", "0.001"):
            monitored = _sharded_bytes(tmp_path, "on", monitor=True)
        plain = _sharded_bytes(tmp_path, "off", monitor=False)
        assert monitored == plain

    def test_multiworker_monitored_identical(self, tmp_path):
        with env_override("REPRO_HEARTBEAT_S", "0.001"):
            monitored = _sharded_bytes(
                tmp_path, "on2", monitor=True, workers=2)
        plain = _sharded_bytes(tmp_path, "off2", monitor=False)
        assert monitored == plain

    def test_fresh_process_cli_monitor_identical(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        flags = ["--users", "6", "--duration", "0.6", "--seed", "11",
                 "--shards", "3", "--workers", "2", "--no-ledger"]
        outputs = {}
        for label, extra in (("on", ["--monitor"]), ("off", ["--quiet"])):
            out = tmp_path / f"cli-{label}"
            run_env = dict(env)
            if extra == ["--monitor"]:
                run_env["REPRO_HEARTBEAT_S"] = "0.001"
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "fleet", "run",
                 *flags, *extra, "--out", str(out)],
                env=run_env, capture_output=True, text=True,
            )
            assert proc.returncode == 0, proc.stderr
            outputs[label] = (out / "fleet.json").read_bytes()
        assert outputs["on"] == outputs["off"]
        json.loads(outputs["on"])  # artifact is well-formed JSON
