"""Unit tests for antenna patterns."""

import math

import numpy as np
import pytest

from repro.phy.antenna import (
    GaussianBeamPattern,
    OmniPattern,
    UlaPattern,
    peak_gain_dbi_for_beamwidth,
)


class TestPeakGain:
    def test_narrow_beats_wide(self):
        narrow = peak_gain_dbi_for_beamwidth(math.radians(20))
        wide = peak_gain_dbi_for_beamwidth(math.radians(60))
        assert narrow > wide

    def test_plausible_values(self):
        # 20-degree azimuth beam on a phone module: mid-teens dBi.
        gain = peak_gain_dbi_for_beamwidth(math.radians(20))
        assert 12.0 < gain < 20.0

    def test_full_circle_near_omni(self):
        # A full-circle azimuth beam with 60-deg elevation focus keeps a
        # small residual gain (a real omni patch has ~2 dBi).
        assert 0.0 <= peak_gain_dbi_for_beamwidth(2 * math.pi) < 3.0

    def test_rejects_bad_beamwidth(self):
        with pytest.raises(ValueError):
            peak_gain_dbi_for_beamwidth(0.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            peak_gain_dbi_for_beamwidth(1.0, efficiency=0.0)


class TestGaussianBeam:
    def make(self, bw_deg=20.0, **kwargs):
        return GaussianBeamPattern(math.radians(bw_deg), **kwargs)

    def test_boresight_is_peak(self):
        beam = self.make()
        assert beam.gain_dbi(0.0) == beam.peak_gain_dbi

    def test_exactly_3db_at_half_beamwidth(self):
        beam = self.make(20.0)
        half = math.radians(10.0)
        assert beam.gain_dbi(half) == pytest.approx(beam.peak_gain_dbi - 3.0)

    def test_symmetric(self):
        beam = self.make()
        for offset in (0.05, 0.1, 0.4, 1.0):
            assert beam.gain_dbi(offset) == pytest.approx(beam.gain_dbi(-offset))

    def test_monotone_within_mainlobe(self):
        beam = self.make(30.0)
        offsets = np.linspace(0, math.radians(15), 30)
        gains = [beam.gain_dbi(float(o)) for o in offsets]
        assert all(a >= b for a, b in zip(gains, gains[1:]))

    def test_sidelobe_floor(self):
        beam = self.make(20.0)
        assert beam.gain_dbi(math.pi) == beam.sidelobe_floor_dbi
        assert beam.sidelobe_floor_dbi < beam.peak_gain_dbi

    def test_wraps_offsets(self):
        beam = self.make()
        assert beam.gain_dbi(2 * math.pi + 0.01) == pytest.approx(
            beam.gain_dbi(0.01)
        )

    def test_array_matches_scalar(self):
        beam = self.make(40.0)
        offsets = np.linspace(-math.pi, math.pi, 17)
        vectorized = beam.gain_dbi_array(offsets)
        scalar = [beam.gain_dbi(float(o)) for o in offsets]
        np.testing.assert_allclose(vectorized, scalar)

    def test_explicit_peak_gain(self):
        beam = self.make(20.0, peak_gain_dbi=25.0)
        assert beam.peak_gain_dbi == 25.0

    def test_rejects_positive_sidelobe(self):
        with pytest.raises(ValueError):
            self.make(20.0, sidelobe_rel_db=1.0)

    def test_rejects_bad_beamwidth(self):
        with pytest.raises(ValueError):
            GaussianBeamPattern(0.0)


class TestOmni:
    def test_flat(self):
        omni = OmniPattern(2.0)
        for offset in (-3.0, 0.0, 1.0, 3.14):
            assert omni.gain_dbi(offset) == 2.0

    def test_beamwidth_full_circle(self):
        assert OmniPattern().beamwidth_rad == 2 * math.pi

    def test_array(self):
        omni = OmniPattern(1.5)
        np.testing.assert_allclose(
            omni.gain_dbi_array(np.array([0.0, 1.0])), [1.5, 1.5]
        )


class TestUla:
    def test_peak_gain_scales_with_elements(self):
        assert UlaPattern(8).peak_gain_dbi == pytest.approx(
            10 * math.log10(8)
        )

    def test_boresight_near_peak(self):
        ula = UlaPattern(8)
        assert ula.gain_dbi(0.0) == pytest.approx(ula.peak_gain_dbi)

    def test_single_element_omni_front(self):
        ula = UlaPattern(1)
        assert ula.gain_dbi(0.0) == pytest.approx(0.0)
        assert ula.beamwidth_rad == 2 * math.pi

    def test_backplane_floor(self):
        assert UlaPattern(8).gain_dbi(math.pi) == -10.0

    def test_rejects_zero_elements(self):
        with pytest.raises(ValueError):
            UlaPattern(0)

    def test_gaussian_tracks_ula_mainlobe(self):
        """The Gaussian model approximates a real ULA inside the mainlobe."""
        n = 8
        ula = UlaPattern(n)
        gauss = GaussianBeamPattern(
            ula.beamwidth_rad, peak_gain_dbi=ula.peak_gain_dbi
        )
        # Within +/- half the HPBW the two models agree to ~1.5 dB.
        for frac in (-0.5, -0.25, 0.0, 0.25, 0.5):
            offset = frac * ula.beamwidth_rad
            assert abs(ula.gain_dbi(offset) - gauss.gain_dbi(offset)) < 1.5
