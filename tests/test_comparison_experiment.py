"""Tests for the protocol comparison runner (small trial counts)."""

import pytest

from repro.experiments.comparison import (
    run_comparison,
    run_comparison_trial,
    summarize_comparison,
)


class TestComparisonTrial:
    def test_silent_tracker_trial(self):
        result = run_comparison_trial("silent-tracker", "walk", seed=3)
        assert result.protocol == "silent-tracker"
        assert result.handovers_completed >= 1
        assert result.soft_handovers >= 1

    def test_reactive_trial_only_hard(self):
        result = run_comparison_trial("reactive", "vehicular", seed=3)
        assert result.soft_handovers == 0

    def test_deterministic(self):
        a = run_comparison_trial("oracle", "walk", seed=5)
        b = run_comparison_trial("oracle", "walk", seed=5)
        assert a == b


class TestComparisonAggregate:
    @pytest.fixture(scope="class")
    def results(self):
        return run_comparison(
            scenario="vehicular", n_trials=4, base_seed=7600,
            protocols=("silent-tracker", "reactive"),
        )

    def test_protocol_arms(self, results):
        assert set(results) == {"silent-tracker", "reactive"}

    def test_summary_interruption_gap(self, results):
        summary = {row["protocol"]: row for row in summarize_comparison(results)}
        tracker = summary["silent-tracker"]["mean_interruption_s"]
        reactive = summary["reactive"]["mean_interruption_s"]
        if tracker is not None and reactive is not None:
            assert tracker < reactive

    def test_summary_soft_ratios(self, results):
        summary = {row["protocol"]: row for row in summarize_comparison(results)}
        if summary["silent-tracker"]["soft_ratio"] is not None:
            assert summary["silent-tracker"]["soft_ratio"] > 0.5
        if summary["reactive"]["soft_ratio"] is not None:
            assert summary["reactive"]["soft_ratio"] == 0.0
