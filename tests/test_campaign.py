"""Tests for the campaign subsystem: spec grids, artifacts, resume.

The heavyweight guarantees — serial-vs-parallel byte identity and
resume-skips-completed — are exercised on small ``search`` grids (the
cheapest experiment kind) so the whole file stays fast.
"""

import json

import pytest

from repro.campaign.aggregate import (
    aggregate_comparison,
    aggregate_search,
    load_campaign,
    summarize_campaign,
)
from repro.campaign.progress import ProgressReporter
from repro.campaign.runner import (
    CampaignError,
    CampaignResult,
    run_campaign,
    resume_campaign,
)
from repro.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    SpecError,
    build_config,
    config_to_overrides,
    load_spec,
)
from repro.campaign.store import ArtifactStore, StoreError
from repro.cli import main
from repro.core.beamsurfer import BeamSurferConfig
from repro.core.config import SilentTrackerConfig


def small_search_spec(**kwargs) -> CampaignSpec:
    defaults = dict(
        name="t-search",
        experiment="search",
        scenarios=("walk",),
        protocols=("narrow", "omni"),
        seeds=2,
        base_seed=100,
        params={"deadline_s": 1.0},
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def artifact_bytes(out_dir) -> dict:
    cells = sorted((out_dir / "cells").glob("*.json"))
    return {path.name: path.read_bytes() for path in cells}


class RecordingProgress(ProgressReporter):
    def __init__(self):
        self.started = None
        self.cells = []
        self.finished = None

    def on_start(self, total, skipped):
        self.started = (total, skipped)

    def on_cell_done(self, cell, ok, elapsed_s):
        self.cells.append((cell.cell_id, ok))

    def on_finish(self, executed, failed, elapsed_s):
        self.finished = (executed, failed)


class TestSpecExpansion:
    def test_grid_size_and_order(self):
        spec = CampaignSpec(
            name="grid",
            experiment="tracking",
            scenarios=("walk", "vehicular"),
            protocols=("narrow",),
            seeds=3,
            base_seed=10,
            overrides={"a": {}, "b": {"handover_margin_db": 6.0}},
        )
        cells = spec.expand()
        assert spec.n_cells == len(cells) == 2 * 1 * 2 * 3
        # scenario-major, then protocol, then override, then seed
        assert [c.scenario for c in cells[:6]] == ["walk"] * 6
        assert [c.override_label for c in cells[:6]] == ["a", "a", "a", "b", "b", "b"]
        assert [c.seed for c in cells[:3]] == [10, 11, 12]

    def test_rejects_bad_inputs(self):
        with pytest.raises(SpecError):
            small_search_spec(experiment="quantum")
        with pytest.raises(SpecError):
            small_search_spec(seeds=0)
        with pytest.raises(SpecError):
            small_search_spec(scenarios=("flying",))
        with pytest.raises(SpecError):
            small_search_spec(protocols=())
        with pytest.raises(SpecError):
            small_search_spec(overrides={})

    def test_rejects_unknown_protocol_axis_value_at_construction(self):
        # The protocols axis is validated per experiment kind against
        # the registries — a typo fails here, not mid-campaign.
        with pytest.raises(SpecError, match="known: narrow, omni, wide"):
            small_search_spec(protocols=("narrow", "psychic"))
        with pytest.raises(SpecError, match="oracle, reactive, silent-tracker"):
            small_search_spec(experiment="comparison", protocols=("oracel",))

    def test_rejects_duplicate_axis_values(self):
        with pytest.raises(SpecError):
            small_search_spec(protocols=("narrow", "narrow"))
        with pytest.raises(SpecError):
            small_search_spec(scenarios=("walk", "walk"))

    def test_spec_error_is_value_error(self):
        assert issubclass(SpecError, ValueError)

    def test_spec_roundtrip_through_json_file(self, tmp_path):
        spec = small_search_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        loaded = load_spec(path)
        assert loaded == spec
        assert loaded.spec_hash == spec.spec_hash


class TestCellIds:
    def test_golden_id_stable(self):
        """Cell IDs must never drift: they name on-disk artifacts."""
        cell = small_search_spec(protocols=("narrow",), seeds=1).expand()[0]
        assert cell.cell_id == "b9564805432c0c12"

    def test_id_excludes_campaign_name(self):
        a = small_search_spec(name="first").expand()
        b = small_search_spec(name="second").expand()
        assert [c.cell_id for c in a] == [c.cell_id for c in b]

    def test_id_depends_on_content(self):
        base = small_search_spec(protocols=("narrow",), seeds=1).expand()[0]
        other_seed = small_search_spec(
            protocols=("narrow",), seeds=1, base_seed=101
        ).expand()[0]
        other_params = small_search_spec(
            protocols=("narrow",), seeds=1, params={"deadline_s": 2.0}
        ).expand()[0]
        assert base.cell_id != other_seed.cell_id
        assert base.cell_id != other_params.cell_id

    def test_ids_unique_across_grid(self):
        cells = small_search_spec(seeds=3).expand()
        assert len({c.cell_id for c in cells}) == len(cells)

    def test_cell_dict_roundtrip(self):
        cell = small_search_spec().expand()[0]
        clone = CampaignCell.from_dict(json.loads(json.dumps(cell.to_dict())))
        assert clone == cell
        assert clone.cell_id == cell.cell_id


class TestConfigOverrides:
    def test_roundtrip(self):
        config = SilentTrackerConfig(
            handover_margin_db=6.0,
            beamsurfer=BeamSurferConfig(adapt_threshold_db=2.0),
        )
        rebuilt = build_config(config_to_overrides(config))
        assert rebuilt == config

    def test_empty_overrides_mean_default(self):
        assert build_config({}) is None
        assert build_config(None) is None

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            build_config({"no_such_knob": 1.0})


class TestRunCampaign:
    def test_in_memory_run_aggregates(self):
        result = run_campaign(small_search_spec())
        assert isinstance(result, CampaignResult)
        assert result.executed == 4
        assert result.skipped == 0
        agg = aggregate_search(result.results_in_order())["walk"]
        assert set(agg) == {"narrow", "omni"}
        assert len(agg["narrow"]["trials"]) == 2
        assert agg["narrow"]["success_rate"] >= agg["omni"]["success_rate"]

    def test_matches_direct_trials(self):
        from repro.experiments.fig2a import run_search_trial

        result = run_campaign(small_search_spec(protocols=("narrow",)))
        campaign_trials = [trial for _, trial in result.trials_in_order()]
        direct = [
            run_search_trial("narrow", scenario="walk", seed=100 + k)
            for k in range(2)
        ]
        assert campaign_trials == direct

    def test_tracking_payload_roundtrips_outcome(self):
        from repro.experiments.fig2c import run_fig2c, run_tracking_trial

        results = run_fig2c(scenarios=("vehicular",), n_trials=2, base_seed=200)
        direct = [
            run_tracking_trial("vehicular", seed=200 + k) for k in range(2)
        ]
        assert results["vehicular"]["trials"] == direct

    @pytest.fixture()
    def exploding_codebook(self):
        # Registered (so spec validation passes) but raising at trial
        # time: the way a cell can still fail mid-run.
        from repro.registry import CODEBOOKS

        @CODEBOOKS.register("exploding")
        def _exploding():
            raise ValueError("exploding codebook")

        yield "exploding"
        CODEBOOKS.unregister("exploding")

    def test_failed_cells_collected_not_fatal_to_others(
        self, tmp_path, exploding_codebook
    ):
        spec = small_search_spec(
            protocols=("narrow", exploding_codebook), seeds=1
        )
        with pytest.raises(CampaignError) as excinfo:
            run_campaign(spec, out_dir=tmp_path / "camp")
        assert len(excinfo.value.failures) == 1
        # the healthy arm's artifact was still written
        assert len(artifact_bytes(tmp_path / "camp")) == 1

    def test_rejects_zero_workers(self):
        with pytest.raises(CampaignError):
            run_campaign(small_search_spec(), workers=0)

    def test_failure_carries_traceback(self, exploding_codebook):
        spec = small_search_spec(protocols=(exploding_codebook,), seeds=1)
        with pytest.raises(CampaignError) as excinfo:
            run_campaign(spec)
        (trace,) = excinfo.value.failures.values()
        assert "Traceback" in trace
        assert "ValueError" in trace


class TestDeterminismAndResume:
    @pytest.fixture(scope="class")
    def serial_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("serial") / "camp"
        run_campaign(small_search_spec(), out_dir=out, workers=1)
        return out

    def test_parallel_artifacts_byte_identical(
        self, serial_dir, tmp_path_factory
    ):
        out = tmp_path_factory.mktemp("parallel") / "camp"
        run_campaign(small_search_spec(), out_dir=out, workers=2)
        assert artifact_bytes(out) == artifact_bytes(serial_dir)

    def test_resume_skips_completed_cells(self, serial_dir, tmp_path_factory):
        out = tmp_path_factory.mktemp("resume") / "camp"
        spec = small_search_spec()
        run_campaign(spec, out_dir=out, workers=1)
        before = artifact_bytes(out)
        victims = sorted((out / "cells").glob("*.json"))[::2]
        for victim in victims:
            victim.unlink()
        progress = RecordingProgress()
        result = run_campaign(spec, out_dir=out, workers=1, progress=progress)
        assert result.skipped == len(before) - len(victims)
        assert result.executed == len(victims)
        executed_ids = {cell_id for cell_id, _ in progress.cells}
        assert executed_ids == {victim.stem for victim in victims}
        assert artifact_bytes(out) == before

    def test_resume_campaign_reads_manifest(self, serial_dir):
        progress = RecordingProgress()
        result = resume_campaign(serial_dir, progress=progress)
        assert result.executed == 0
        assert result.skipped == 4
        assert progress.started == (4, 4)
        assert len(result.payloads) == 4

    def test_corrupt_artifact_rerun(self, serial_dir, tmp_path_factory):
        out = tmp_path_factory.mktemp("corrupt") / "camp"
        spec = small_search_spec()
        run_campaign(spec, out_dir=out)
        before = artifact_bytes(out)
        victim = sorted((out / "cells").glob("*.json"))[0]
        victim.write_text("{not json", encoding="utf-8")
        result = run_campaign(spec, out_dir=out)
        assert result.executed == 1
        assert artifact_bytes(out) == before

    def test_mismatched_spec_refused(self, serial_dir):
        other = small_search_spec(base_seed=999)
        with pytest.raises(StoreError):
            run_campaign(other, out_dir=serial_dir)

    def test_load_campaign_roundtrip(self, serial_dir):
        spec, pairs = load_campaign(serial_dir)
        assert spec.spec_hash == small_search_spec().spec_hash
        assert len(pairs) == 4
        headers, rows = summarize_campaign(spec, pairs)
        assert headers[:3] == ["scenario", "protocol", "override"]
        assert len(rows) == 2  # narrow + omni arms


class TestStore:
    def test_initialize_twice_same_spec_ok(self, tmp_path):
        store = ArtifactStore(tmp_path / "camp")
        spec = small_search_spec()
        store.initialize(spec)
        store.initialize(spec)
        assert store.load_spec() == spec

    def test_load_spec_without_manifest(self, tmp_path):
        with pytest.raises(StoreError):
            ArtifactStore(tmp_path / "nowhere").load_spec()

    def test_artifact_id_mismatch_treated_missing(self, tmp_path):
        store = ArtifactStore(tmp_path / "camp")
        spec = small_search_spec(seeds=1, protocols=("narrow",))
        store.initialize(spec)
        cell = spec.expand()[0]
        path = store.write_cell(cell, {"ok": 1})
        assert store.completed_ids() == {cell.cell_id}
        renamed = path.with_name("0000000000000000.json")
        path.rename(renamed)
        assert store.completed_ids() == set()


class TestWorkloadCampaign:
    def test_sweep_matches_one_shot(self):
        from repro.experiments.workloads import (
            generate_rss_trace,
            run_workload_sweep,
        )

        sweep = run_workload_sweep(
            scenarios=("walk",),
            policies=("best",),
            n_traces=1,
            base_seed=3,
            duration_s=0.5,
        )
        direct = generate_rss_trace(
            scenario="walk", seed=3, duration_s=0.5, rx_beam_policy="best"
        )
        assert sweep["walk"]["best"][0] == direct


class TestCampaignCli:
    def test_run_and_summarize(self, tmp_path, capsys):
        out = tmp_path / "camp"
        code = main(
            [
                "campaign", "run",
                "--experiment", "search",
                "--scenarios", "walk",
                "--protocols", "narrow",
                "--seeds", "1",
                "--base-seed", "50",
                "--out", str(out),
                "--quiet",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "campaign" in output
        assert "narrow" in output
        assert (out / "manifest.json").exists()

        assert main(["campaign", "summarize", "--out", str(out)]) == 0
        assert "1/1 cells" in capsys.readouterr().out

        assert main(["campaign", "resume", "--out", str(out), "--quiet"]) == 0
        assert "1/1 cells" in capsys.readouterr().out

    def test_run_from_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        small_search_spec(seeds=1, protocols=("narrow",)).save(spec_path)
        assert main(["campaign", "run", "--spec", str(spec_path), "--quiet"]) == 0
        assert "t-search" in capsys.readouterr().out

    def test_run_requires_spec_or_experiment(self):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--quiet"])

    def test_user_errors_exit_2_without_traceback(self, tmp_path, capsys):
        code = main(["campaign", "resume", "--out", str(tmp_path / "nope")])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "no campaign manifest" in captured.err
