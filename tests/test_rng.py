"""Unit tests for the named RNG registry."""

import pytest

from repro.sim.rng import RngRegistry


class TestStreams:
    def test_same_name_same_object(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_different_names_independent(self):
        registry = RngRegistry(1)
        a = registry.stream("a").random(5)
        b = registry.stream("b").random(5)
        assert list(a) != list(b)

    def test_reproducible_across_registries(self):
        first = RngRegistry(42).stream("shadowing/link0").random(10)
        second = RngRegistry(42).stream("shadowing/link0").random(10)
        assert list(first) == list(second)

    def test_different_seeds_differ(self):
        first = RngRegistry(1).stream("x").random(5)
        second = RngRegistry(2).stream("x").random(5)
        assert list(first) != list(second)

    def test_adding_stream_does_not_perturb_existing(self):
        # Draw from 'a' alone, then in another registry draw from 'b'
        # first: 'a' must see the same sequence either way.
        lone = RngRegistry(7)
        expected = lone.stream("a").random(5)
        mixed = RngRegistry(7)
        mixed.stream("b").random(100)
        actual = mixed.stream("a").random(5)
        assert list(actual) == list(expected)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(1).stream("")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(-1)

    def test_stream_names_sorted(self):
        registry = RngRegistry(1)
        registry.stream("zeta")
        registry.stream("alpha")
        assert registry.stream_names() == ["alpha", "zeta"]


class TestFork:
    def test_fork_deterministic(self):
        a = RngRegistry(5).fork(3).stream("x").random(4)
        b = RngRegistry(5).fork(3).stream("x").random(4)
        assert list(a) == list(b)

    def test_forks_independent(self):
        a = RngRegistry(5).fork(1).stream("x").random(4)
        b = RngRegistry(5).fork(2).stream("x").random(4)
        assert list(a) != list(b)

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(5)
        child = parent.fork(0)
        assert list(parent.stream("x").random(4)) != list(
            child.stream("x").random(4)
        )
