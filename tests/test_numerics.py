"""Unit tests for repro.util.numerics."""

import math

import pytest

from repro.util.numerics import (
    Ewma,
    RunningStats,
    clamp,
    is_close,
    lin_interp,
    pairwise,
    quantile,
)


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)


class TestLinInterp:
    def test_midpoint(self):
        assert lin_interp(0.5, 0.0, 1.0, 10.0, 20.0) == pytest.approx(15.0)

    def test_endpoints(self):
        assert lin_interp(0.0, 0.0, 1.0, 10.0, 20.0) == 10.0
        assert lin_interp(1.0, 0.0, 1.0, 10.0, 20.0) == 20.0

    def test_extrapolates(self):
        assert lin_interp(2.0, 0.0, 1.0, 0.0, 1.0) == pytest.approx(2.0)

    def test_degenerate_interval(self):
        assert lin_interp(5.0, 1.0, 1.0, 3.0, 9.0) == 3.0


class TestPairwise:
    def test_basic(self):
        assert list(pairwise([1, 2, 3])) == [(1, 2), (2, 3)]

    def test_short(self):
        assert list(pairwise([1])) == []
        assert list(pairwise([])) == []


class TestEwma:
    def test_first_sample_seeds(self):
        filt = Ewma(0.5)
        assert filt.update(10.0) == 10.0

    def test_smooths(self):
        filt = Ewma(0.5)
        filt.update(10.0)
        assert filt.update(20.0) == pytest.approx(15.0)

    def test_alpha_one_passthrough(self):
        filt = Ewma(1.0)
        filt.update(1.0)
        assert filt.update(100.0) == 100.0

    def test_converges_to_constant(self):
        filt = Ewma(0.3)
        for _ in range(200):
            filt.update(7.0)
        assert filt.value == pytest.approx(7.0)

    def test_reset(self):
        filt = Ewma(0.5)
        filt.update(10.0)
        filt.reset()
        assert filt.value is None
        assert filt.update(2.0) == 2.0

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            Ewma(0.0)
        with pytest.raises(ValueError):
            Ewma(1.5)


class TestRunningStats:
    def test_empty_raises(self):
        stats = RunningStats()
        with pytest.raises(ValueError):
            _ = stats.mean

    def test_single_sample(self):
        stats = RunningStats()
        stats.push(4.0)
        assert stats.mean == 4.0
        assert stats.variance == 0.0
        assert stats.min == 4.0
        assert stats.max == 4.0

    def test_matches_direct_computation(self):
        values = [1.0, 2.0, 4.0, 8.0, 16.0]
        stats = RunningStats()
        stats.extend(values)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats.mean == pytest.approx(mean)
        assert stats.variance == pytest.approx(variance)
        assert stats.stddev == pytest.approx(math.sqrt(variance))

    def test_summary_empty(self):
        assert RunningStats().summary() == {"count": 0}

    def test_summary_keys(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0])
        summary = stats.summary()
        assert set(summary) == {"count", "mean", "stddev", "min", "max"}


class TestQuantile:
    def test_median_odd(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_median_even_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        values = [3.0, 5.0, 9.0]
        assert quantile(values, 0.0) == 3.0
        assert quantile(values, 1.0) == 9.0

    def test_single_value(self):
        assert quantile([7.0], 0.25) == 7.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestIsClose:
    def test_close(self):
        assert is_close(1.0, 1.0 + 1e-12)

    def test_far(self):
        assert not is_close(1.0, 1.1)
