"""Tests for the plugin registries and their wiring into campaigns.

Covers the registry mechanics (round-trip, duplicate protection, rich
unknown-name errors), a third-party toy protocol/scenario registered
in-test and run end-to-end through the Session API and a campaign grid,
and byte-identity of campaign cell artifacts against goldens captured
at the pre-registry commit.
"""

import json
from pathlib import Path

import pytest

from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, SpecError
from repro.registry import (
    CODEBOOKS,
    EXPERIMENTS,
    PROTOCOLS,
    SCENARIOS,
    DuplicateNameError,
    Registry,
    RegistryError,
    UnknownNameError,
    register_protocol,
    register_scenario,
)

DATA_DIR = Path(__file__).resolve().parent / "data"


class TestRegistryMechanics:
    def test_register_lookup_names_roundtrip(self):
        registry = Registry("widget")
        registry.register("a", 1)
        registry.register("b", 2)
        assert registry.get("a") == 1
        assert registry["b"] == 2
        assert registry.names() == ("a", "b")
        assert "a" in registry
        assert len(registry) == 2
        assert dict(registry.items()) == {"a": 1, "b": 2}

    def test_decorator_form(self):
        registry = Registry("widget")

        @registry.register("fn")
        def factory():
            return 42

        assert registry.get("fn") is factory

    def test_unknown_name_lists_choices(self):
        registry = Registry("widget")
        registry.register("beta", 2)
        registry.register("alpha", 1)
        with pytest.raises(UnknownNameError) as excinfo:
            registry.get("gamma")
        assert str(excinfo.value) == "unknown widget 'gamma'; known: alpha, beta"

    def test_duplicate_rejected_without_override(self):
        registry = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(DuplicateNameError, match="override=True"):
            registry.register("a", 2)
        assert registry.get("a") == 1
        registry.register("a", 2, override=True)
        assert registry.get("a") == 2

    def test_unregister(self):
        registry = Registry("widget")
        registry.register("a", 1)
        assert registry.unregister("a") == 1
        with pytest.raises(UnknownNameError):
            registry.unregister("a")

    def test_bad_name_rejected(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError):
            registry.register("", 1)
        with pytest.raises(RegistryError):
            registry.register(3, 1)

    def test_errors_are_value_errors(self):
        # Call sites that predate the registries catch ValueError.
        assert issubclass(RegistryError, ValueError)
        assert issubclass(UnknownNameError, RegistryError)
        assert issubclass(DuplicateNameError, RegistryError)

    def test_plugin_claiming_builtin_name_collides_at_registration(self):
        # In a fresh interpreter (builtins not yet loaded), registering
        # a builtin name must fail right away at the plugin's own
        # registration — not later, mid-builtin-import, on the first
        # lookup — and must leave the registry fully usable.
        import os
        import subprocess
        import sys

        code = (
            "from repro.registry import register_protocol, DuplicateNameError\n"
            "try:\n"
            "    @register_protocol('oracle')\n"
            "    def build(d, m, s, config=None):\n"
            "        return None\n"
            "except DuplicateNameError:\n"
            "    print('collided-at-registration')\n"
            "from repro.registry import PROTOCOLS\n"
            "assert callable(PROTOCOLS.get('silent-tracker'))\n"
            "print('registry-usable')\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "collided-at-registration" in proc.stdout
        assert "registry-usable" in proc.stdout


class TestBuiltinRegistries:
    def test_builtin_names(self):
        assert set(PROTOCOLS.names()) >= {"silent-tracker", "reactive", "oracle"}
        assert SCENARIOS.names()[:3] == ("walk", "rotation", "vehicular")
        assert set(CODEBOOKS.names()) >= {"narrow", "wide", "omni"}
        assert set(EXPERIMENTS.names()) >= {
            "search",
            "tracking",
            "comparison",
            "workload",
            "hierarchical",
            "pingpong",
        }

    def test_unknown_protocol_error_message(self):
        with pytest.raises(UnknownNameError) as excinfo:
            PROTOCOLS.get("oracel")
        message = str(excinfo.value)
        assert message.startswith("unknown protocol 'oracel'; known: ")
        assert "oracle, reactive, silent-tracker" in message

    def test_scenario_defs_complete(self):
        for name in SCENARIOS.names():
            scenario = SCENARIOS.get(name)
            assert scenario.duration_s > 0
            trajectory = scenario.make_trajectory()
            assert trajectory.position_at(0.0) is not None

    def test_experiment_defs_declare_axes(self):
        for name in EXPERIMENTS.names():
            kind = EXPERIMENTS.get(name)
            valid = kind.protocol_names()
            assert valid, f"{name} declares no protocol-axis values"
            for arm in kind.default_protocols:
                assert arm in valid


# ------------------------------------------------------------- toy plugins
class SilentProtocol:
    """Minimal registered arm: listen on beam 0, count bursts, never
    hand over.  (The fuller worked example, with a real serving-cell
    attach, lives in examples/custom_plugin.py.)"""

    def __init__(self, deployment, mobile, serving_cell):
        from repro.net.handover import HandoverLog

        self.handover_log = HandoverLog()
        self.started = False
        self.stopped = False
        self.measurements = 0
        mobile.attach_listener(self)

    def start(self):
        self.started = True

    def stop(self):
        self.stopped = True

    def choose_rx_beam(self, cell_id, now_s):
        return 0

    def on_measurement(self, measurement):
        self.measurements += 1


@pytest.fixture()
def toy_protocol():
    @register_protocol("toy-silent")
    def _build(deployment, mobile, serving_cell, config=None):
        return SilentProtocol(deployment, mobile, serving_cell)

    yield "toy-silent"
    PROTOCOLS.unregister("toy-silent")


@pytest.fixture()
def toy_scenario():
    from repro.geometry.vectors import Vec3
    from repro.mobility.walk import HumanWalk

    @register_scenario(
        "toy-amble",
        duration_s=2.0,
        default_start_x=9.0,
        description="slow walk for plugin tests",
    )
    def _build(rng, start_x):
        return HumanWalk(Vec3(start_x, 0.0), Vec3(0.7, 0.0), rng=rng)

    yield "toy-amble"
    SCENARIOS.unregister("toy-amble")


class TestThirdPartyPlugins:
    def test_toy_protocol_through_session(self, toy_protocol, toy_scenario):
        from repro.api import Session, TrialSpec

        spec = TrialSpec(
            scenario=toy_scenario, protocol=toy_protocol, seed=3
        )
        with Session(spec) as session:
            protocol = session.attach_protocol()
            session.run()
        assert protocol.started
        assert protocol.stopped
        assert protocol.measurements > 0
        assert session.elapsed_s == pytest.approx(2.0)

    def test_toy_protocol_through_campaign_grid(
        self, toy_protocol, toy_scenario
    ):
        spec = CampaignSpec(
            name="plugin-grid",
            experiment="comparison",
            scenarios=(toy_scenario,),
            protocols=(toy_protocol, "oracle"),
            seeds=2,
            base_seed=50,
        )
        result = run_campaign(spec)
        assert len(result.payloads) == 4
        trials = [trial for _, trial in result.trials_in_order()]
        assert {t.protocol for t in trials} == {toy_protocol, "oracle"}
        # The toy protocol never hands over, by construction.
        assert all(
            t.handovers_completed == 0
            for t in trials
            if t.protocol == toy_protocol
        )

    def test_unregistered_arms_rejected_after_teardown(self):
        with pytest.raises(SpecError):
            CampaignSpec(
                name="gone",
                experiment="comparison",
                scenarios=("walk",),
                protocols=("toy-silent",),
                seeds=1,
            )


class TestArtifactGoldens:
    """Campaign cell artifacts must be byte-identical to the files
    captured by running the same specs at the pre-registry commit."""

    @pytest.mark.parametrize(
        "golden,spec_kwargs",
        [
            (
                "golden_cell_search.json",
                dict(
                    experiment="search",
                    scenarios=("walk",),
                    protocols=("narrow",),
                    seeds=1,
                    base_seed=100,
                    params={"deadline_s": 0.5},
                ),
            ),
            (
                "golden_cell_tracking.json",
                dict(
                    experiment="tracking",
                    scenarios=("vehicular",),
                    protocols=("narrow",),
                    seeds=1,
                    base_seed=200,
                ),
            ),
        ],
    )
    def test_cell_artifact_byte_identical(self, tmp_path, golden, spec_kwargs):
        spec = CampaignSpec(name="golden-check", **spec_kwargs)
        run_campaign(spec, out_dir=tmp_path)
        (cell,) = spec.expand()
        produced = (tmp_path / "cells" / f"{cell.cell_id}.json").read_bytes()
        expected = (DATA_DIR / golden).read_bytes()
        assert json.loads(produced)  # sanity: artifact parses
        assert produced == expected


class TestListCli:
    def test_list_human(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for section in ("protocols", "scenarios", "codebooks", "experiments"):
            assert section in output
        assert "silent-tracker" in output
        assert "vehicular" in output

    def test_list_single_registry_json(self, capsys):
        from repro.cli import main

        assert main(["list", "protocols", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"protocols"}
        names = [entry["name"] for entry in payload["protocols"]]
        assert {"silent-tracker", "reactive", "oracle"} <= set(names)

    def test_list_json_all_sections(self, capsys):
        from repro.cli import main

        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "protocols",
            "scenarios",
            "codebooks",
            "experiments",
            "switches",
        }
        switches = {s["name"]: s for s in payload["switches"]}
        assert switches["REPRO_BURST_PATH"]["default"] == "vectorized"
        experiments = {e["name"]: e for e in payload["experiments"]}
        assert experiments["comparison"]["protocol_axis"] == "protocol"
        assert "silent-tracker" in experiments["comparison"]["protocols"]

    def test_unknown_arm_exits_2(self, capsys):
        from repro.cli import main

        code = main(
            [
                "campaign",
                "run",
                "--experiment",
                "comparison",
                "--scenarios",
                "walk",
                "--protocols",
                "oracel",
                "--seeds",
                "1",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "oracel" in err
        assert "oracle, reactive, silent-tracker" in err
