"""Unit tests for the beam quality table."""

import pytest

from repro.measure.beam_table import BeamQualityTable
from repro.measure.report import RssMeasurement


def detection(time_s, rx_beam, rss, cell="cellB", tx_beam=2):
    return RssMeasurement(time_s, cell, rx_beam, tx_beam=tx_beam,
                          rss_dbm=rss, snr_db=rss + 70.0)


def miss(time_s, rx_beam, cell="cellB"):
    return RssMeasurement(time_s, cell, rx_beam)


class TestRecord:
    def test_detection_stored(self):
        table = BeamQualityTable()
        table.record(detection(0.1, 3, -60.0))
        entry = table.entry(3, now_s=0.2)
        assert entry.rss_dbm == -60.0
        assert entry.tx_beam == 2

    def test_miss_clears_entry(self):
        table = BeamQualityTable()
        table.record(detection(0.1, 3, -60.0))
        table.record(miss(0.2, 3))
        assert table.entry(3, now_s=0.25) is None

    def test_update_overwrites(self):
        table = BeamQualityTable()
        table.record(detection(0.1, 3, -60.0))
        table.record(detection(0.2, 3, -55.0))
        assert table.entry(3, now_s=0.25).rss_dbm == -55.0


class TestFreshness:
    def test_stale_entry_hidden(self):
        table = BeamQualityTable(staleness_s=0.5)
        table.record(detection(0.0, 3, -60.0))
        assert table.entry(3, now_s=0.4) is not None
        assert table.entry(3, now_s=0.6) is None

    def test_best_ignores_stale(self):
        table = BeamQualityTable(staleness_s=0.5)
        table.record(detection(0.0, 1, -50.0))  # strong but old
        table.record(detection(0.6, 2, -65.0))  # weak but fresh
        assert table.best(now_s=0.7).rx_beam == 2

    def test_best_picks_strongest_fresh(self):
        table = BeamQualityTable()
        table.record(detection(0.1, 1, -63.0))
        table.record(detection(0.1, 2, -58.0))
        table.record(detection(0.1, 3, -70.0))
        assert table.best(now_s=0.2).rx_beam == 2

    def test_best_none_when_empty(self):
        assert BeamQualityTable().best(now_s=1.0) is None

    def test_fresh_entries_sorted(self):
        table = BeamQualityTable()
        table.record(detection(0.1, 1, -63.0))
        table.record(detection(0.1, 2, -58.0))
        entries = table.fresh_entries(now_s=0.2)
        assert [e.rx_beam for e in entries] == [2, 1]

    def test_purge_stale(self):
        table = BeamQualityTable(staleness_s=0.5)
        table.record(detection(0.0, 1, -60.0))
        table.record(detection(0.9, 2, -60.0))
        dropped = table.purge_stale(now_s=1.0)
        assert dropped == 1
        assert len(table) == 1

    def test_clear(self):
        table = BeamQualityTable()
        table.record(detection(0.0, 1, -60.0))
        table.clear()
        assert len(table) == 0

    def test_rejects_bad_staleness(self):
        with pytest.raises(ValueError):
            BeamQualityTable(staleness_s=0.0)


class TestMeasurementRecord:
    def test_detected_property(self):
        assert detection(0.0, 1, -60.0).detected
        assert not miss(0.0, 1).detected
