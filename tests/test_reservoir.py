"""Property tests for the streaming metric structures in analysis.stats.

The sharded fleet path folds per-user metrics into
:class:`~repro.analysis.stats.QuantileReservoir` /
:class:`~repro.analysis.stats.StreamingMoments` per shard and merges
the per-shard structures on the driver, so the contracts that matter
are merge laws (commutativity, associativity-within-tolerance) and
agreement with the exact batch statistics of :mod:`repro.analysis.stats`
— including on adversarial distributions (constants, duplicates,
extreme dynamic range, sorted and anti-sorted inputs).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    QuantileReservoir,
    StreamingMoments,
    empirical_cdf,
    summarize,
)

# Values with duplicates, huge dynamic range, negatives and zeros —
# but no NaN/inf (metrics are finite by construction).
_values = st.lists(
    st.one_of(
        st.floats(
            min_value=-1e9, max_value=1e9,
            allow_nan=False, allow_infinity=False,
        ),
        st.sampled_from([0.0, 1.0, -1.0, 1e-12, 1e12, 3.5]),
    ),
    min_size=0,
    max_size=400,
)


def _rank_error(reservoir, values, q):
    """Normalized rank distance of the estimate from true quantile q.

    A value with duplicates occupies a *range* of ranks; the error is
    the distance from q to that range (zero when q falls inside it), so
    constant or heavily-tied inputs are not spuriously penalised.
    """
    ordered = np.sort(np.asarray(values))
    n = len(ordered)
    estimate = reservoir.quantile(q)
    lo = np.searchsorted(ordered, estimate, side="left") / n
    hi = np.searchsorted(ordered, estimate, side="right") / n
    if lo <= q <= hi:
        return 0.0
    return min(abs(q - lo), abs(q - hi))


# ---------------------------------------------------------------- exactness
@settings(max_examples=200, deadline=None)
@given(_values)
def test_uncompacted_reservoir_matches_exact_stats(values):
    """While exact, quantiles and CDF are bit-identical to the batch path."""
    reservoir = QuantileReservoir(capacity=None)
    reservoir.extend(values)
    assert reservoir.exact
    assert reservoir.count == len(values)
    if not values:
        return
    expected = summarize(values)
    assert reservoir.quantile(0.1) == expected["p10"]
    assert reservoir.quantile(0.5) == expected["p50"]
    assert reservoir.quantile(0.9) == expected["p90"]
    xs, ps = reservoir.cdf()
    exp_xs, exp_ps = empirical_cdf(values)
    assert list(xs) == list(exp_xs)
    assert list(ps) == list(exp_ps)


@settings(max_examples=100, deadline=None)
@given(_values, _values)
def test_merge_commutes_exactly(a, b):
    """merge(A, B) and merge(B, A) hold identical state (canonical form)."""
    left = QuantileReservoir(capacity=8)
    left.extend(a)
    other = QuantileReservoir(capacity=8)
    other.extend(b)
    right = QuantileReservoir(capacity=8)
    right.extend(b)
    other2 = QuantileReservoir(capacity=8)
    other2.extend(a)
    left.merge(other)
    right.merge(other2)
    assert left.to_dict() == right.to_dict()
    # Moments commute too (floating point: merge order identical sums).
    ma, mb = StreamingMoments(), StreamingMoments()
    ma.extend(a)
    mb.extend(b)
    mba, mbb = StreamingMoments(), StreamingMoments()
    mba.extend(b)
    mbb.extend(a)
    ma.merge(mb)
    mba.merge(mbb)
    assert ma.count == mba.count
    assert ma.min == mba.min and ma.max == mba.max
    if ma.count:
        assert math.isclose(ma.mean, mba.mean, rel_tol=1e-9, abs_tol=1e-6)


@settings(max_examples=60, deadline=None)
@given(_values, _values, _values)
def test_merge_associativity_within_rank_tolerance(a, b, c):
    """(A+B)+C and A+(B+C) agree with exact quantiles within rank error.

    Compaction order may differ between groupings, so the reservoirs
    need not be bitwise equal — but both must stay within the
    documented rank-error envelope of the true quantiles.
    """
    values = list(a) + list(b) + list(c)
    if not values:
        return
    capacity = 32

    def build(*parts):
        out = QuantileReservoir(capacity=capacity)
        for part in parts:
            chunk = QuantileReservoir(capacity=capacity)
            chunk.extend(part)
            out.merge(chunk)
        return out

    left = build(a, b)
    tail = QuantileReservoir(capacity=capacity)
    tail.extend(c)
    left.merge(tail)

    right_tail = build(b, c)
    right = QuantileReservoir(capacity=capacity)
    right.extend(a)
    right.merge(right_tail)

    n = len(values)
    assert left.count == right.count == n
    # Documented envelope: O(count * log2(count/capacity) / capacity);
    # generous constant keeps the test about contract, not tuning.
    levels = max(1.0, math.log2(max(2.0, n / capacity)))
    tolerance = min(0.5, 3.0 * levels / capacity) + 1.0 / n
    for q in (0.1, 0.5, 0.9):
        assert _rank_error(left, values, q) <= tolerance
        assert _rank_error(right, values, q) <= tolerance


# ------------------------------------------------------------- adversarial
@pytest.mark.parametrize(
    "values",
    [
        [1.0] * 5000,                                   # all duplicates
        list(np.linspace(0.0, 1.0, 5000)),              # sorted
        list(np.linspace(1.0, 0.0, 5000)),              # anti-sorted
        list(np.geomspace(1e-9, 1e9, 5000)),            # huge dynamic range
        [0.0] * 2500 + [1e9] * 2500,                    # bimodal extremes
        list(np.sin(np.arange(5000) * 12.9898) * 1e4),  # oscillating
    ],
    ids=["dup", "sorted", "antisorted", "geomspace", "bimodal", "oscillating"],
)
def test_compacted_quantiles_on_adversarial_distributions(values):
    """Bounded reservoirs track exact quantiles on hostile inputs."""
    capacity = 256
    reservoir = QuantileReservoir(capacity=capacity)
    reservoir.extend(values)
    assert not reservoir.exact or len(values) <= capacity
    n = len(values)
    levels = max(1.0, math.log2(max(2.0, n / capacity)))
    tolerance = 3.0 * levels / capacity + 1.0 / n
    for q in (0.1, 0.25, 0.5, 0.75, 0.9):
        assert _rank_error(reservoir, values, q) <= tolerance


def test_sharded_merge_matches_exact_quantiles():
    """K-way shard merge (the fleet pattern) stays within tolerance."""
    rng = np.random.default_rng(7)
    values = rng.lognormal(mean=0.0, sigma=2.0, size=60_000)
    capacity = 512
    shards = []
    for part in np.array_split(values, 16):
        reservoir = QuantileReservoir(capacity=capacity)
        reservoir.extend(part.tolist())
        shards.append(reservoir)
    merged = shards[0]
    for shard in shards[1:]:
        merged.merge(shard)
    assert merged.count == len(values)
    n = len(values)
    levels = max(1.0, math.log2(n / capacity))
    tolerance = 3.0 * levels / capacity
    for q in (0.1, 0.5, 0.9, 0.99):
        assert _rank_error(merged, values.tolist(), q) <= tolerance


@settings(max_examples=100, deadline=None)
@given(_values, _values)
def test_streaming_moments_match_batch_summary(a, b):
    """Welford/Chan moments agree with the exact batch summary."""
    values = list(a) + list(b)
    left, right = StreamingMoments(), StreamingMoments()
    left.extend(a)
    right.extend(b)
    left.merge(right)
    assert left.count == len(values)
    if not values:
        return
    exact = summarize(values)
    assert left.min == exact["min"] and left.max == exact["max"]
    scale = max(1.0, abs(exact["mean"]))
    assert math.isclose(left.mean, exact["mean"], rel_tol=1e-9, abs_tol=1e-9 * scale)
    if len(values) >= 2:
        spread = max(1.0, exact["stddev"])
        assert math.isclose(
            left.stddev, exact["stddev"], rel_tol=1e-6, abs_tol=1e-6 * spread
        )


def test_reservoir_round_trip_and_validation():
    reservoir = QuantileReservoir(capacity=16)
    reservoir.extend(float(x) for x in range(100))
    clone = QuantileReservoir.from_dict(reservoir.to_dict())
    assert clone.to_dict() == reservoir.to_dict()
    assert clone.count == 100
    with pytest.raises(Exception):
        QuantileReservoir(capacity=4)  # below minimum
    other = QuantileReservoir(capacity=32)
    with pytest.raises(Exception):
        reservoir.merge(other)  # mismatched capacity
