"""Unit tests for BeamSurfer (serving-cell beam maintenance).

These drive the decision engine directly with synthetic measurements,
pinning the EO / S-RBA / CABM logic without a full simulation.
"""

import pytest

from repro.core.beamsurfer import BeamSurfer, BeamSurferConfig, ServingState
from repro.measure.report import RssMeasurement
from repro.phy.codebook import Codebook


def detection(time_s, rx_beam, rss):
    return RssMeasurement(time_s, "cellA", rx_beam, tx_beam=0,
                          rss_dbm=rss, snr_db=rss + 70.0)


def miss(time_s, rx_beam):
    return RssMeasurement(time_s, "cellA", rx_beam)


def make_surfer(initial_beam=9, alpha=1.0, threshold=3.0, transitions=None):
    config = BeamSurferConfig(adapt_threshold_db=threshold, ewma_alpha=alpha)
    hook = None
    if transitions is not None:
        hook = lambda old, new, edge, t: transitions.append((old, new, edge))
    return BeamSurfer(Codebook.uniform_azimuth(20.0), initial_beam, config,
                      on_transition=hook)


def feed(surfer, measurement, now=None):
    surfer.on_serving_measurement(measurement, now if now is not None
                                  else measurement.time_s)


class TestEdgeOperation:
    def test_initial_state(self):
        surfer = make_surfer()
        assert surfer.state is ServingState.EDGE_OPERATION
        assert surfer.beam == 9

    def test_healthy_rss_stays_eo(self):
        """Edge A: dRSS < 3 dB keeps the beam and the state."""
        surfer = make_surfer()
        for k in range(10):
            feed(surfer, detection(0.02 * k, 9, -60.0 - 0.1 * k))
        assert surfer.state is ServingState.EDGE_OPERATION
        assert surfer.beam == 9
        assert surfer.mobile_switches == 0

    def test_smoothed_rss_exposed(self):
        surfer = make_surfer()
        feed(surfer, detection(0.0, 9, -60.0))
        assert surfer.smoothed_rss_dbm == pytest.approx(-60.0)


class TestMobileAdaptation:
    def test_drop_enters_probe(self):
        """A >3 dB drop triggers S-RBA (edge G toward adaptation)."""
        surfer = make_surfer()
        feed(surfer, detection(0.00, 9, -60.0))
        feed(surfer, detection(0.02, 9, -64.0))
        assert surfer.state is ServingState.MOBILE_ADAPTATION
        # The next burst dwell probes an adjacent beam.
        assert surfer.beam_for_burst() in (8, 10)

    def test_probe_selects_better_adjacent(self):
        surfer = make_surfer()
        feed(surfer, detection(0.00, 9, -60.0))
        feed(surfer, detection(0.02, 9, -64.0))
        first_probe = surfer.beam_for_burst()
        feed(surfer, detection(0.04, first_probe,
                               -61.0 if first_probe == 8 else -75.0))
        second_probe = surfer.beam_for_burst()
        feed(surfer, detection(0.06, second_probe,
                               -61.0 if second_probe == 8 else -75.0))
        assert surfer.beam == 8
        assert surfer.mobile_switches == 1
        assert surfer.state is ServingState.EDGE_OPERATION

    def test_recovery_rearms_reference(self):
        surfer = make_surfer()
        feed(surfer, detection(0.00, 9, -60.0))
        feed(surfer, detection(0.02, 9, -64.0))
        # Both probes recover to near the original level.
        for _ in range(2):
            probe = surfer.beam_for_burst()
            feed(surfer, detection(0.04, probe, -60.5))
        assert surfer.state is ServingState.EDGE_OPERATION
        # A small further drop from the new reference must not retrigger.
        feed(surfer, detection(0.06, surfer.beam, -61.5))
        assert surfer.state is ServingState.EDGE_OPERATION

    def test_missed_committed_dwell_triggers_probe(self):
        surfer = make_surfer()
        feed(surfer, detection(0.00, 9, -60.0))
        feed(surfer, miss(0.02, 9))
        assert surfer.state is ServingState.MOBILE_ADAPTATION


class TestCellAssistance:
    def drive_to_cabm(self, surfer):
        """Degrade everything so mobile-side adaptation is insufficient."""
        feed(surfer, detection(0.00, 9, -60.0))
        feed(surfer, detection(0.02, 9, -65.0))  # drop -> probe
        for _ in range(2):
            probe = surfer.beam_for_burst()
            feed(surfer, detection(0.04, probe, -66.0))  # both bad

    def test_insufficient_probe_requests_cabm(self):
        """Edge G: best mobile beam still degraded -> CABM."""
        transitions = []
        surfer = make_surfer(transitions=transitions)
        self.drive_to_cabm(surfer)
        assert surfer.state is ServingState.CELL_ASSISTED
        assert surfer.cabm_request_pending
        assert surfer.cabm_requests == 1
        edges = [e for (_, _, e) in transitions]
        assert "G" in edges

    def test_recovery_in_cabm_is_edge_f(self):
        """Edge F: the cell's tx switch restores RSS -> back to EO."""
        transitions = []
        surfer = make_surfer(transitions=transitions)
        self.drive_to_cabm(surfer)
        feed(surfer, detection(0.10, surfer.beam, -60.5))
        assert surfer.state is ServingState.EDGE_OPERATION
        assert not surfer.cabm_request_pending
        assert transitions[-1][2] == "F"

    def test_omni_goes_straight_to_cabm(self):
        """A single-beam codebook cannot adapt mobile-side."""
        config = BeamSurferConfig(ewma_alpha=1.0)
        surfer = BeamSurfer(Codebook.omni(), 0, config)
        feed(surfer, detection(0.00, 0, -60.0))
        feed(surfer, detection(0.02, 0, -65.0))
        assert surfer.state is ServingState.CELL_ASSISTED


class TestRebind:
    def test_rebind_resets_state(self):
        surfer = make_surfer()
        feed(surfer, detection(0.00, 9, -60.0))
        feed(surfer, detection(0.02, 9, -65.0))
        surfer.rebind(4, -58.0)
        assert surfer.beam == 4
        assert surfer.state is ServingState.EDGE_OPERATION
        assert surfer.smoothed_rss_dbm == pytest.approx(-58.0)

    def test_rebind_without_rss_rearms_lazily(self):
        surfer = make_surfer()
        feed(surfer, detection(0.00, 9, -60.0))
        surfer.rebind(4)
        assert surfer.smoothed_rss_dbm is None
        feed(surfer, detection(0.10, 4, -62.0))
        assert surfer.smoothed_rss_dbm == pytest.approx(-62.0)


class TestConfig:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            BeamSurferConfig(adapt_threshold_db=0.0)

    def test_rejects_bad_patience(self):
        with pytest.raises(ValueError):
            BeamSurferConfig(probe_patience_bursts=0)
