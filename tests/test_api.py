"""Tests for the typed session API (TrialSpec / Session / TrialResult)."""

import pytest

from repro.api import (
    Session,
    SessionError,
    TrialResult,
    TrialSpec,
    run_trial,
)
from repro.registry import PROTOCOLS, UnknownNameError, register_protocol


class TestTrialSpec:
    def test_defaults_validate(self):
        spec = TrialSpec()
        assert spec.scenario == "walk"
        assert spec.resolved_duration_s == 10.0  # walk's registered default

    def test_duration_override_wins(self):
        assert TrialSpec(duration_s=0.5).resolved_duration_s == 0.5

    def test_unknown_axes_rejected_at_construction(self):
        with pytest.raises(UnknownNameError, match="unknown scenario"):
            TrialSpec(scenario="swimming")
        with pytest.raises(UnknownNameError, match="unknown codebook"):
            TrialSpec(codebook="laser")
        with pytest.raises(UnknownNameError, match="unknown protocol"):
            TrialSpec(protocol="oracel")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TrialSpec(duration_s=-1.0)


class TestSessionLifecycle:
    def test_builds_deployment_from_spec(self):
        with Session(TrialSpec(scenario="walk", seed=5, n_cells=2)) as session:
            assert len(session.deployment.stations) == 2
            assert session.mobile.mobile_id == "ue0"

    def test_kwargs_shorthand(self):
        with Session(scenario="vehicular", seed=2) as session:
            assert session.spec.scenario == "vehicular"
        with pytest.raises(TypeError):
            Session(TrialSpec(), scenario="walk")

    def test_attach_and_run(self):
        with Session(TrialSpec(protocol="silent-tracker", seed=3)) as session:
            protocol = session.attach_protocol()
            ran = session.run(0.5)
        assert ran == 0.5
        assert session.elapsed_s == 0.5
        assert protocol is session.protocol

    def test_attach_twice_rejected(self):
        with Session(TrialSpec(protocol="oracle")) as session:
            session.attach_protocol()
            with pytest.raises(SessionError):
                session.attach_protocol("reactive")

    def test_attach_without_name_rejected(self):
        with Session(TrialSpec()) as session:
            with pytest.raises(SessionError):
                session.attach_protocol()

    def test_closed_session_rejects_use(self):
        session = Session(TrialSpec())
        session.close()
        with pytest.raises(SessionError):
            session.run(0.1)
        with pytest.raises(SessionError):
            session.attach_protocol("oracle")

    def test_protocol_stopped_on_exception(self):
        calls = []

        class Recorder:
            def __init__(self, deployment, mobile, serving_cell):
                self.handover_log = None

            def start(self):
                calls.append("start")

            def stop(self):
                calls.append("stop")

        @register_protocol("recorder")
        def _build(deployment, mobile, serving_cell, config=None):
            return Recorder(deployment, mobile, serving_cell)

        try:
            with pytest.raises(RuntimeError, match="trial body exploded"):
                with Session(TrialSpec(protocol="recorder")) as session:
                    session.attach_protocol()
                    session.run(0.1)
                    raise RuntimeError("trial body exploded")
            assert calls == ["start", "stop"]
        finally:
            PROTOCOLS.unregister("recorder")

    def test_unstarted_protocol_not_stopped(self):
        calls = []

        class Recorder:
            def __init__(self):
                self.handover_log = None

            def start(self):
                calls.append("start")

            def stop(self):
                calls.append("stop")

        @register_protocol("recorder2")
        def _build(deployment, mobile, serving_cell, config=None):
            return Recorder()

        try:
            with Session(TrialSpec(protocol="recorder2")) as session:
                session.attach_protocol()
                # never run: stop() must not fire on close
            assert calls == []
        finally:
            PROTOCOLS.unregister("recorder2")

    def test_close_idempotent(self):
        session = Session(TrialSpec())
        session.close()
        session.close()

    def test_result_envelope(self):
        with Session(TrialSpec(scenario="rotation", seed=9)) as session:
            session.run(0.25)
            result = session.result("search", {"answer": 42})
        assert isinstance(result, TrialResult)
        assert result.experiment == "search"
        assert result.scenario == "rotation"
        assert result.seed == 9
        assert result.duration_s == 0.25
        assert result.payload == {"answer": 42}


class TestRunTrial:
    def test_search_kind(self):
        result = run_trial(
            "search",
            scenario="walk",
            codebook="narrow",
            seed=100,
            params={"deadline_s": 0.5},
        )
        assert result.experiment == "search"
        assert result.codebook == "narrow"
        assert result.payload.codebook == "narrow"
        assert result.payload.seed == 100

    def test_matches_direct_trial_function(self):
        from repro.experiments.fig2a import run_search_trial

        via_api = run_trial(
            "search", scenario="walk", seed=100, params={"deadline_s": 0.5}
        )
        direct = run_search_trial("narrow", scenario="walk", seed=100,
                                  deadline_s=0.5)
        assert via_api.payload == direct

    def test_comparison_kind_uses_protocol_axis(self):
        result = run_trial(
            "comparison",
            scenario="vehicular",
            protocol="oracle",
            seed=7,
            duration_s=1.0,
        )
        assert result.protocol == "oracle"
        assert result.payload.protocol == "oracle"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(UnknownNameError, match="unknown experiment"):
            run_trial("quantum")

    def test_unknown_arm_rejected(self):
        with pytest.raises(UnknownNameError, match="known:"):
            run_trial("hierarchical", arm="psychic")

    def test_custom_axis_requires_explicit_arm(self):
        from repro.registry import RegistryError

        with pytest.raises(RegistryError, match="explicit arm="):
            run_trial("workload")

    def test_duration_maps_to_kind_param(self):
        # `search` reads its length from params["deadline_s"]: the spec
        # duration must actually bound the trial, not just be reported.
        from repro.experiments.fig2a import run_search_trial

        via_api = run_trial("search", scenario="walk", seed=100,
                            duration_s=0.5)
        direct = run_search_trial("narrow", scenario="walk", seed=100,
                                  deadline_s=0.5)
        assert via_api.payload == direct
        assert via_api.duration_s == 0.5

    def test_codebook_honored_on_protocol_axis_kinds(self):
        from repro.experiments.comparison import run_comparison_trial

        via_api = run_trial("comparison", scenario="vehicular",
                            protocol="oracle", codebook="wide", seed=7,
                            duration_s=1.0)
        direct = run_comparison_trial("oracle", "vehicular", seed=7,
                                      codebook="wide", duration_s=1.0)
        assert via_api.codebook == "wide"
        assert via_api.payload == direct

    def test_unhonorable_spec_fields_rejected(self):
        from repro.registry import RegistryError

        # search ignores configs and the deployment knobs — silently
        # dropping them would make the envelope lie.
        from repro.core.config import SilentTrackerConfig

        with pytest.raises(RegistryError, match="config"):
            run_trial("search", scenario="walk",
                      config=SilentTrackerConfig())
        with pytest.raises(RegistryError, match="start_x"):
            run_trial("search", scenario="walk", start_x=3.0)
        with pytest.raises(RegistryError, match="n_cells"):
            run_trial("search", scenario="walk", n_cells=2)
        with pytest.raises(RegistryError, match="codebook"):
            run_trial("workload", arm="best", codebook="wide")

    def test_to_dict_flattens_payload(self):
        result = run_trial(
            "search", scenario="walk", seed=100, params={"deadline_s": 0.5}
        )
        record = result.to_dict()
        assert record["experiment"] == "search"
        assert isinstance(record["payload"], dict)
        assert record["payload"]["seed"] == 100
