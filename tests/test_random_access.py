"""Unit tests for the four-step random-access procedure."""

import pytest

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.base import StaticPose
from repro.net.base_station import BaseStation
from repro.net.link_engine import LinkEngine
from repro.net.mobile import Mobile
from repro.net.random_access import (
    RachOutcome,
    RandomAccessProcedure,
)
from repro.phy.channel import Channel, ChannelConfig
from repro.phy.codebook import Codebook
from repro.phy.frame import RachConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


def make_setup(tx_power=10.0, mobile_at=Vec3(10.0, 0.0), seed=1):
    sim = Simulator()
    registry = RngRegistry(seed)
    links = LinkEngine(Channel(ChannelConfig.deterministic(), registry), registry)
    station = BaseStation(
        "cellB",
        Pose(Vec3(0.0, 10.0)),
        Codebook.uniform_azimuth(20.0),
        tx_power_dbm=tx_power,
    )
    mobile = Mobile("ue0", StaticPose(Pose(mobile_at)), Codebook.uniform_azimuth(20.0))
    return sim, links, station, mobile


def run_rach(sim, links, station, mobile, mobile_beam, station_beam,
             config=None, trace=None):
    results = []
    procedure = RandomAccessProcedure(
        sim,
        links,
        station,
        mobile,
        config or RachConfig(),
        (lambda: mobile_beam) if not callable(mobile_beam) else mobile_beam,
        (lambda: station_beam) if not callable(station_beam) else station_beam,
        results.append,
        trace=trace,
    )
    procedure.start()
    sim.run_until(5.0)
    return procedure, results


class TestSuccessPath:
    def test_aligned_beams_succeed_first_attempt(self):
        sim, links, station, mobile = make_setup()
        mobile_beam = mobile.best_rx_beam_towards(station, 0.0)
        station_beam = station.best_tx_beam_towards(
            station.pose.bearing_to(mobile.pose_at(0.0).position)
        )
        procedure, results = run_rach(
            sim, links, station, mobile, mobile_beam, station_beam
        )
        assert len(results) == 1
        result = results[0]
        assert result.outcome is RachOutcome.SUCCESS
        assert result.attempts == 1

    def test_completion_time_includes_occasion_wait(self):
        sim, links, station, mobile = make_setup()
        config = RachConfig()
        mobile_beam = mobile.best_rx_beam_towards(station, 0.0)
        station_beam = station.best_tx_beam_towards(
            station.pose.bearing_to(mobile.pose_at(0.0).position)
        )
        _, results = run_rach(
            sim, links, station, mobile, mobile_beam, station_beam, config
        )
        result = results[0]
        expected = config.next_occasion(0.0) + config.minimum_completion_s()
        assert result.end_s == pytest.approx(expected)

    def test_trace_records_messages(self):
        sim, links, station, mobile = make_setup()
        trace = TraceRecorder()
        mobile_beam = mobile.best_rx_beam_towards(station, 0.0)
        station_beam = station.best_tx_beam_towards(
            station.pose.bearing_to(mobile.pose_at(0.0).position)
        )
        run_rach(sim, links, station, mobile, mobile_beam, station_beam,
                 trace=trace)
        for category in ("rach.msg1", "rach.msg2", "rach.msg3", "rach.msg4",
                         "rach.complete"):
            assert trace.count(category=category) >= 1


class TestFailurePath:
    def test_no_beam_fails_after_max_attempts(self):
        sim, links, station, mobile = make_setup()
        config = RachConfig(max_attempts=3)
        procedure, results = run_rach(
            sim, links, station, mobile, lambda: None, lambda: None, config
        )
        assert results[0].outcome is RachOutcome.FAILURE
        assert results[0].attempts == 3

    def test_misaligned_beams_fail(self):
        sim, links, station, mobile = make_setup(tx_power=0.0)
        best = mobile.best_rx_beam_towards(station, 0.0)
        opposite = (best + 9) % 18
        config = RachConfig(max_attempts=2)
        _, results = run_rach(
            sim, links, station, mobile, opposite, 0, config
        )
        assert results[0].outcome is RachOutcome.FAILURE

    def test_beam_restored_mid_procedure_recovers(self):
        """Losing the beam costs attempts; restoring it lets RACH finish."""
        sim, links, station, mobile = make_setup()
        good_beam = mobile.best_rx_beam_towards(station, 0.0)
        station_beam = station.best_tx_beam_towards(
            station.pose.bearing_to(mobile.pose_at(0.0).position)
        )
        calls = {"n": 0}

        def flaky_beam():
            calls["n"] += 1
            return None if calls["n"] <= 1 else good_beam

        _, results = run_rach(
            sim, links, station, mobile, flaky_beam, station_beam
        )
        result = results[0]
        assert result.outcome is RachOutcome.SUCCESS
        assert result.attempts >= 2

    def test_cannot_start_twice(self):
        sim, links, station, mobile = make_setup()
        procedure = RandomAccessProcedure(
            sim, links, station, mobile, RachConfig(),
            lambda: 0, lambda: 0, lambda r: None,
        )
        procedure.start()
        with pytest.raises(RuntimeError):
            procedure.start()

    def test_finished_flag(self):
        sim, links, station, mobile = make_setup()
        mobile_beam = mobile.best_rx_beam_towards(station, 0.0)
        station_beam = station.best_tx_beam_towards(
            station.pose.bearing_to(mobile.pose_at(0.0).position)
        )
        procedure, _ = run_rach(
            sim, links, station, mobile, mobile_beam, station_beam
        )
        assert procedure.finished
