"""Unit tests for repro.geometry.vectors."""

import math

import pytest

from repro.geometry.vectors import Vec3, bearing_xy, distance


class TestArithmetic:
    def test_add(self):
        assert Vec3(1, 2, 3) + Vec3(4, 5, 6) == Vec3(5, 7, 9)

    def test_sub(self):
        assert Vec3(4, 5, 6) - Vec3(1, 2, 3) == Vec3(3, 3, 3)

    def test_scalar_mul_commutes(self):
        assert Vec3(1, 2, 3) * 2 == 2 * Vec3(1, 2, 3) == Vec3(2, 4, 6)

    def test_div(self):
        assert Vec3(2, 4, 6) / 2 == Vec3(1, 2, 3)

    def test_neg(self):
        assert -Vec3(1, -2, 3) == Vec3(-1, 2, -3)

    def test_immutable(self):
        v = Vec3(1, 2, 3)
        with pytest.raises(Exception):
            v.x = 9

    def test_zero_constant(self):
        assert Vec3.ZERO == Vec3(0.0, 0.0, 0.0)


class TestProducts:
    def test_dot(self):
        assert Vec3(1, 2, 3).dot(Vec3(4, -5, 6)) == 12

    def test_cross_right_handed(self):
        x, y = Vec3(1, 0, 0), Vec3(0, 1, 0)
        assert x.cross(y) == Vec3(0, 0, 1)

    def test_cross_anticommutes(self):
        a, b = Vec3(1, 2, 3), Vec3(-2, 0.5, 4)
        assert a.cross(b) == -b.cross(a)


class TestNorms:
    def test_norm(self):
        assert Vec3(3, 4, 0).norm() == 5.0

    def test_norm_xy_ignores_z(self):
        assert Vec3(3, 4, 100).norm_xy() == 5.0

    def test_normalized(self):
        unit = Vec3(0, 0, 5).normalized()
        assert unit == Vec3(0, 0, 1)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            Vec3.ZERO.normalized()

    def test_distance(self):
        assert distance(Vec3(0, 0), Vec3(3, 4)) == 5.0
        assert Vec3(0, 0).distance_to(Vec3(3, 4)) == 5.0


class TestAzimuth:
    def test_plus_x(self):
        assert Vec3(1, 0).azimuth() == pytest.approx(0.0)

    def test_plus_y(self):
        assert Vec3(0, 1).azimuth() == pytest.approx(math.pi / 2)

    def test_minus_x(self):
        assert abs(Vec3(-1, 0).azimuth()) == pytest.approx(math.pi)

    def test_undefined_for_vertical(self):
        with pytest.raises(ValueError):
            Vec3(0, 0, 1).azimuth()

    def test_bearing(self):
        assert bearing_xy(Vec3(0, 0), Vec3(0, 5)) == pytest.approx(math.pi / 2)

    def test_bearing_coincident_raises(self):
        with pytest.raises(ValueError):
            bearing_xy(Vec3(1, 1), Vec3(1, 1))


class TestRotation:
    def test_quarter_turn(self):
        rotated = Vec3(1, 0).rotated_z(math.pi / 2)
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    def test_preserves_z(self):
        assert Vec3(1, 0, 7).rotated_z(1.0).z == 7

    def test_preserves_norm(self):
        v = Vec3(3, -2, 1)
        assert v.rotated_z(0.7).norm() == pytest.approx(v.norm())

    def test_from_polar(self):
        v = Vec3.from_polar_xy(2.0, math.pi / 2)
        assert v.x == pytest.approx(0.0, abs=1e-12)
        assert v.y == pytest.approx(2.0)
