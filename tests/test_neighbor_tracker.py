"""Unit tests for the neighbor tracker (N-A/R, N-RBA, edges B/C/D/H)."""

import pytest

from repro.core.events import Fig2bEdge, NeighborState
from repro.core.neighbor_tracker import NeighborTracker, spiral_order
from repro.measure.report import RssMeasurement
from repro.phy.codebook import Codebook


def detection(time_s, rx_beam, rss, cell="cellB", tx_beam=1):
    return RssMeasurement(time_s, cell, rx_beam, tx_beam=tx_beam,
                          rss_dbm=rss, snr_db=rss + 70.0)


def miss(time_s, rx_beam, cell="cellB"):
    return RssMeasurement(time_s, cell, rx_beam)


def make_tracker(cells=("cellB",), transitions=None, **kwargs):
    hook = None
    if transitions is not None:
        hook = lambda old, new, edge, t: transitions.append(edge)
    kwargs.setdefault("ewma_alpha", 1.0)
    return NeighborTracker(Codebook.uniform_azimuth(20.0), list(cells),
                           on_transition=hook, **kwargs)


class TestSpiralOrder:
    def test_starts_at_center(self):
        assert spiral_order(5, 18)[0] == 5

    def test_expands_alternating(self):
        assert spiral_order(5, 18)[:5] == [5, 6, 4, 7, 3]

    def test_covers_all_unique(self):
        order = spiral_order(3, 18)
        assert sorted(order) == list(range(18))

    def test_even_ring_no_duplicates(self):
        order = spiral_order(0, 6)
        assert sorted(order) == list(range(6))

    def test_single_beam(self):
        assert spiral_order(0, 1) == [0]

    def test_validates(self):
        with pytest.raises(IndexError):
            spiral_order(5, 3)
        with pytest.raises(ValueError):
            spiral_order(0, 0)


class TestSearch:
    def test_idle_until_begun(self):
        tracker = make_tracker()
        assert tracker.state is NeighborState.IDLE
        assert tracker.beam_for_burst("cellB") is None

    def test_edge_b_starts_search(self):
        transitions = []
        tracker = make_tracker(transitions=transitions)
        tracker.begin_search(0.0)
        assert tracker.state is NeighborState.SEARCHING
        assert transitions == [Fig2bEdge.B]

    def test_sweep_advances_on_miss(self):
        tracker = make_tracker()
        tracker.begin_search(0.0)
        first = tracker.beam_for_burst("cellB")
        tracker.on_measurement(miss(0.02, first), 0.02)
        second = tracker.beam_for_burst("cellB")
        assert second != first
        assert tracker.search_dwells == 1

    def test_edge_c_on_detection(self):
        transitions = []
        tracker = make_tracker(transitions=transitions)
        tracker.begin_search(0.0)
        beam = tracker.beam_for_burst("cellB")
        tracker.on_measurement(detection(0.02, beam, -60.0), 0.02)
        assert tracker.state is NeighborState.TRACKING
        assert tracker.current_beam == beam
        assert tracker.focused_cell == "cellB"
        assert tracker.last_tx_beam == 1
        assert transitions[-1] is Fig2bEdge.C
        assert tracker.search_dwells_at_found == 1

    def test_search_only_configured_cells(self):
        tracker = make_tracker(cells=("cellB",))
        tracker.begin_search(0.0)
        assert tracker.beam_for_burst("cellC") is None

    def test_multi_cell_search(self):
        tracker = make_tracker(cells=("cellB", "cellC"))
        tracker.begin_search(0.0)
        assert tracker.beam_for_burst("cellB") is not None
        assert tracker.beam_for_burst("cellC") is not None

    def test_begin_search_while_tracking_rejected(self):
        tracker = make_tracker()
        tracker.begin_search(0.0)
        beam = tracker.beam_for_burst("cellB")
        tracker.on_measurement(detection(0.02, beam, -60.0), 0.02)
        with pytest.raises(RuntimeError):
            tracker.begin_search(0.1)


def make_tracking(transitions=None, **kwargs):
    """Tracker already locked onto beam 9 at -60 dBm."""
    tracker = make_tracker(transitions=transitions, **kwargs)
    tracker.begin_search(0.0)
    # Force the sweep to offer beam 9 by feeding misses until it shows.
    for k in range(30):
        beam = tracker.beam_for_burst("cellB")
        if beam == 9:
            tracker.on_measurement(detection(0.02 * k, 9, -60.0), 0.02 * k)
            break
        tracker.on_measurement(miss(0.02 * k, beam), 0.02 * k)
    assert tracker.state is NeighborState.TRACKING
    return tracker


class TestTracking:
    def test_steady_rss_keeps_beam(self):
        tracker = make_tracking()
        for k in range(10):
            tracker.on_measurement(detection(1.0 + 0.02 * k, 9, -60.5), 1.0)
        assert tracker.current_beam == 9
        assert tracker.adjacent_switches == 0

    def test_edge_h_adjacent_switch(self):
        transitions = []
        tracker = make_tracking(transitions=transitions)
        # Drop past 3 dB: probe begins.
        tracker.on_measurement(detection(1.00, 9, -64.0), 1.00)
        probe = tracker.beam_for_burst("cellB")
        assert probe in (8, 10)
        tracker.on_measurement(
            detection(1.02, probe, -59.0 if probe == 10 else -70.0), 1.02
        )
        probe2 = tracker.beam_for_burst("cellB")
        tracker.on_measurement(
            detection(1.04, probe2, -59.0 if probe2 == 10 else -70.0), 1.04
        )
        assert tracker.current_beam == 10
        assert tracker.adjacent_switches == 1
        assert Fig2bEdge.H in transitions
        assert tracker.state is NeighborState.TRACKING

    def test_edge_d_on_deep_drop(self):
        transitions = []
        tracker = make_tracking(transitions=transitions)
        tracker.on_measurement(detection(1.0, 9, -72.0), 1.0)  # 12 dB drop
        assert tracker.state is NeighborState.SEARCHING
        assert transitions[-1] is Fig2bEdge.D
        assert tracker.losses == 1
        assert tracker.current_beam is None

    def test_edge_d_on_miss_streak(self):
        tracker = make_tracking(loss_miss_limit=3)
        for k in range(3):
            tracker.on_measurement(miss(1.0 + 0.02 * k, 9), 1.0 + 0.02 * k)
        assert tracker.state is NeighborState.SEARCHING

    def test_reacquisition_spirals_around_last_beam(self):
        tracker = make_tracking()
        tracker.on_measurement(detection(1.0, 9, -72.0), 1.0)
        # First re-acquisition dwell is the lost beam itself, then
        # its ring neighbors.
        offered = [tracker.beam_for_burst("cellB")]
        tracker.on_measurement(miss(1.02, offered[0]), 1.02)
        offered.append(tracker.beam_for_burst("cellB"))
        assert offered == [9, 10]

    def test_probe_failure_counts_toward_loss(self):
        tracker = make_tracking(loss_miss_limit=2)
        tracker.on_measurement(detection(1.0, 9, -64.0), 1.0)  # probe starts
        # Both probes miss entirely, twice -> loss.
        for k in range(4):
            probe = tracker.beam_for_burst("cellB")
            tracker.on_measurement(miss(1.02 + 0.02 * k, probe), 1.02 + 0.02 * k)
            if tracker.state is NeighborState.SEARCHING:
                break
        assert tracker.state is NeighborState.SEARCHING

    def test_smoothed_rss_only_while_tracking(self):
        tracker = make_tracker()
        assert tracker.smoothed_rss_dbm is None
        tracker.begin_search(0.0)
        assert tracker.smoothed_rss_dbm is None


class TestControl:
    def test_go_idle(self):
        tracker = make_tracking()
        tracker.go_idle(2.0)
        assert tracker.state is NeighborState.IDLE
        assert tracker.current_beam is None

    def test_retarget(self):
        tracker = make_tracker(cells=("cellB",))
        tracker.retarget(["cellC"])
        tracker.begin_search(0.0)
        assert tracker.beam_for_burst("cellC") is not None
        assert tracker.beam_for_burst("cellB") is None

    def test_retarget_empty_rejected(self):
        with pytest.raises(ValueError):
            make_tracker().retarget([])

    def test_needs_neighbor_cells(self):
        with pytest.raises(ValueError):
            NeighborTracker(Codebook.uniform_azimuth(20.0), [])

    def test_omni_tracker_cannot_adapt(self):
        tracker = NeighborTracker(Codebook.omni(), ["cellB"], ewma_alpha=1.0)
        tracker.begin_search(0.0)
        tracker.on_measurement(detection(0.0, 0, -60.0), 0.0)
        assert tracker.state is NeighborState.TRACKING
        tracker.on_measurement(detection(0.02, 0, -64.0), 0.02)
        # No adjacent beams: stays on its only beam, no probe offered.
        assert tracker.beam_for_burst("cellB") == 0
        assert tracker.adjacent_switches == 0
