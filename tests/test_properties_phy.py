"""Property-based tests on PHY substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.blockage import BlockageConfig, BlockageProcess
from repro.phy.fading import RicianFading
from repro.phy.frame import FrameConfig, RachConfig
from repro.phy.link import LinkBudget
from repro.phy.pathloss import CloseInPathLoss, DualSlopePathLoss
from repro.phy.shadowing import ShadowingProcess

seeds = st.integers(0, 2**31 - 1)


class TestShadowingProperties:
    @given(seeds, st.lists(st.floats(0.0, 2.0), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_any_forward_step_sequence_valid(self, seed, steps):
        """Non-decreasing distance sequences never raise and always
        produce finite values."""
        process = ShadowingProcess(3.0, 1.5, np.random.default_rng(seed))
        distance = 0.0
        for step in steps:
            distance += step
            value = process.sample_db(distance)
            assert np.isfinite(value)

    @given(seeds)
    @settings(max_examples=30)
    def test_zero_step_is_stable(self, seed):
        process = ShadowingProcess(3.0, 1.5, np.random.default_rng(seed))
        first = process.sample_db(1.0)
        for _ in range(5):
            assert abs(process.sample_db(1.0) - first) < 3.0 * 3 + 1e-9


class TestBlockageProperties:
    @given(seeds, st.floats(0.1, 3.0))
    @settings(max_examples=30)
    def test_attenuation_nonnegative_and_finite(self, seed, rate):
        process = BlockageProcess(
            BlockageConfig(rate_per_s=rate), np.random.default_rng(seed)
        )
        for k in range(100):
            value = process.attenuation_db(0.1 * k)
            assert value >= 0.0
            assert np.isfinite(value)

    @given(seeds)
    @settings(max_examples=30)
    def test_events_serialized(self, seed):
        """The renewal construction never overlaps events."""
        process = BlockageProcess(
            BlockageConfig(rate_per_s=2.0), np.random.default_rng(seed)
        )
        process.attenuation_db(50.0)
        events = process._events
        for earlier, later in zip(events, events[1:]):
            assert earlier.end_s <= later.start_s + 1e-12


class TestFadingProperties:
    @given(seeds, st.floats(0.0, 30.0))
    @settings(max_examples=40)
    def test_finite_draws(self, seed, k_db):
        fading = RicianFading(k_db, np.random.default_rng(seed))
        draws = fading.sample_db_array(100)
        assert np.all(np.isfinite(draws))

    @given(seeds)
    @settings(max_examples=20)
    def test_mean_power_near_unity(self, seed):
        fading = RicianFading(10.0, np.random.default_rng(seed))
        draws = fading.sample_db_array(5000)
        mean_power = float(np.mean(10.0 ** (draws / 10.0)))
        assert 0.85 < mean_power < 1.15


class TestPathlossProperties:
    @given(st.floats(1.0, 200.0), st.floats(1.0, 200.0))
    def test_dual_slope_monotone(self, d1, d2):
        model = DualSlopePathLoss()
        near, far = min(d1, d2), max(d1, d2)
        assert model.path_loss_db(near) <= model.path_loss_db(far) + 1e-9

    @given(st.floats(2.0, 100.0), st.floats(1.6, 4.0), st.floats(1.6, 4.0))
    def test_higher_exponent_more_loss(self, distance, e1, e2):
        lower, higher = min(e1, e2), max(e1, e2)
        a = CloseInPathLoss(60e9, exponent=lower)
        b = CloseInPathLoss(60e9, exponent=higher)
        assert a.path_loss_db(distance) <= b.path_loss_db(distance) + 1e-9


class TestLinkBudgetProperties:
    @given(st.floats(-120.0, 0.0))
    def test_success_probability_in_unit_interval(self, rss):
        budget = LinkBudget()
        p = budget.packet_success_probability(rss)
        assert 0.0 <= p <= 1.0

    @given(st.floats(-120.0, -20.0), st.floats(0.1, 20.0))
    def test_margin_never_hurts(self, rss, margin):
        budget = LinkBudget()
        assert budget.packet_success_probability(
            rss + margin
        ) >= budget.packet_success_probability(rss)


class TestFrameProperties:
    @given(st.floats(0.0, 10.0))
    def test_next_occasion_at_or_after_now(self, now):
        config = RachConfig()
        occasion = config.next_occasion(now)
        assert occasion >= now - 1e-9
        assert occasion - now < config.occasion_period_s + 1e-9

    @given(st.floats(0.0, 10.0), st.integers(1, 64))
    def test_next_burst_at_or_after_now(self, now, n_beams):
        from repro.phy.frame import SsbSchedule

        schedule = SsbSchedule(FrameConfig(), n_beams, phase_s=0.004)
        start = schedule.next_burst_start(now)
        assert start >= now - 1e-9
        assert start - now < FrameConfig().ssb_period_s + 1e-9
