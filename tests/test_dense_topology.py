"""Dense corridor topology: builder, spec plumbing, byte equivalence.

The coalesced burst scheduler and the spatial cell index are pure
execution-plan changes, so a corridor fleet artifact must be
byte-identical across every combination of

* ``REPRO_BURST_SCHED`` (coalesced | legacy),
* ``REPRO_FLEET_PATH`` (batch | scalar),
* ``REPRO_CELL_INDEX`` (on | off),

in-process, sharded, and in a fresh interpreter via the CLI.  The spec
layer must keep old street-topology identity hashes stable so existing
campaign artifacts still resume.
"""

import itertools
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.harness import env_override
from repro.campaign.spec import canonical_json
from repro.experiments.scenarios import build_corridor_deployment
from repro.fleet import FleetSpec, UserProfile, run_fleet_trial
from repro.fleet.experiment import fleet_spec_for_cell
from repro.fleet.spec import nearest_cell_for

SRC = str(Path(__file__).resolve().parent.parent / "src")


def corridor_spec(n_users=6, seed=17, duration_s=1.0, n_cells=12):
    return FleetSpec(
        "dense",
        n_users=n_users,
        profiles=(
            UserProfile("walkers", weight=0.7, scenario="walk",
                        start_jitter_s=0.2),
            UserProfile("spinners", weight=0.3, scenario="rotation"),
        ),
        seed=seed,
        duration_s=duration_s,
        n_cells=n_cells,
        topology="corridor",
    )


class TestCorridorBuilder:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="at least 2 cells"):
            build_corridor_deployment(1, n_cells=1)
        with pytest.raises(ValueError, match="pitch must be positive"):
            build_corridor_deployment(1, n_cells=4, cell_pitch_m=0.0)
        with pytest.raises(ValueError, match="at least 1 phase slot"):
            build_corridor_deployment(1, n_cells=4, phase_slots=0)

    def test_rejects_integer_millisecond_phases(self):
        # phase_slots=10 puts half-slot phases on the millisecond
        # lattice (1 ms, 3 ms, ...), which can collide with protocol
        # events on a shared coalesced tick.
        with pytest.raises(ValueError, match="integer-millisecond"):
            build_corridor_deployment(1, n_cells=4, phase_slots=10)

    def test_station_layout(self):
        deployment = build_corridor_deployment(
            5, n_cells=8, cell_pitch_m=40.0
        )
        stations = list(deployment._stations.values())
        assert [s.cell_id for s in stations] == [
            f"cell{i:04d}" for i in range(8)
        ]
        for i, station in enumerate(stations):
            assert station.pose.position.x == pytest.approx(i * 40.0)
        # Eight stations, eight distinct SSB phases: at most one
        # station group per coalesced tick key, all sharing the period.
        phases = {s.schedule.phase_s for s in stations}
        assert len(phases) == 8


class TestSpecPlumbing:
    def test_street_identity_unchanged_by_new_fields(self):
        # The identity dict of a street spec must not mention the
        # corridor fields, or every pre-PR campaign hash changes and
        # resume breaks.
        spec = fleet_spec_for_cell(
            "uniform", scenario="walk", seed=3, n_users=4, duration_s=1.0
        )
        identity = spec.identity()
        assert "topology" not in identity
        assert "cell_pitch_m" not in identity

    def test_corridor_roundtrip(self):
        spec = corridor_spec()
        clone = FleetSpec.from_dict(spec.identity())
        assert clone.topology == "corridor"
        assert clone.n_cells == spec.n_cells
        assert clone.identity() == spec.identity()

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown topology"):
            FleetSpec("bad", n_users=1, profiles=(
                UserProfile("w", scenario="walk"),
            ), seed=1, duration_s=1.0, topology="mesh")

    def test_rejects_single_cell_corridor(self):
        # Spec-level so the CLI turns `--cells 1` into `error: ...` +
        # exit 2 instead of a deployment-builder traceback.
        with pytest.raises(ValueError, match=">= 2 cells"):
            corridor_spec(n_cells=1)

    def test_nearest_cell_clamps_to_corridor(self):
        spec = corridor_spec(n_cells=12)
        assert nearest_cell_for(spec, -40.0) == "cell0000"
        assert nearest_cell_for(spec, 130.0) == "cell0003"
        assert nearest_cell_for(spec, 1e6) == "cell0011"

    def test_corridor_spec_spreads_spawn_region(self):
        spec = fleet_spec_for_cell(
            "uniform", scenario="walk", seed=3, n_users=4, duration_s=1.0,
            topology="corridor", n_cells=16,
        )
        spans = {profile.spawn_x for profile in spec.profiles}
        assert spans == {(0.0, 15 * 50.0)}


class TestEnvSwitchValidation:
    def test_bad_burst_sched_value_raises(self):
        from repro.net.deployment import Deployment

        with env_override("REPRO_BURST_SCHED", "turbo"):
            with pytest.raises(ValueError, match="REPRO_BURST_SCHED"):
                Deployment()

    def test_bad_cell_index_value_raises(self):
        from repro.net.deployment import Deployment

        with env_override("REPRO_CELL_INDEX", "yes"):
            with pytest.raises(ValueError, match="REPRO_CELL_INDEX"):
                Deployment()


class TestDenseEquivalenceMatrix:
    """The execution-plan switches never change a byte."""

    @pytest.fixture(scope="class")
    def reference_bytes(self):
        # legacy + scalar + index-off is the untouched pre-PR path.
        with env_override("REPRO_BURST_SCHED", "legacy"), \
                env_override("REPRO_FLEET_PATH", "scalar"), \
                env_override("REPRO_CELL_INDEX", "off"):
            return canonical_json(run_fleet_trial(corridor_spec()).to_dict())

    @pytest.mark.parametrize(
        "sched,path,index",
        [
            combo
            for combo in itertools.product(
                ("coalesced", "legacy"), ("batch", "scalar"), ("on", "off")
            )
            if combo != ("legacy", "scalar", "off")
        ],
    )
    def test_matrix_byte_identical(self, sched, path, index, reference_bytes):
        with env_override("REPRO_BURST_SCHED", sched), \
                env_override("REPRO_FLEET_PATH", path), \
                env_override("REPRO_CELL_INDEX", index):
            artifact = canonical_json(
                run_fleet_trial(corridor_spec()).to_dict()
            )
        assert artifact == reference_bytes

    def test_sharded_corridor_byte_identical(self, reference_bytes, tmp_path):
        from repro.fleet import run_fleet_sharded

        result = run_fleet_sharded(corridor_spec(), 3, out_dir=tmp_path)
        assert canonical_json(result.merged.to_dict()) == reference_bytes

    def test_cli_fresh_process_matrix(self, tmp_path):
        """Fresh interpreters on the CLI corridor flags agree across
        the burst-scheduling and index switches."""
        env_base = dict(os.environ)
        env_base["PYTHONPATH"] = SRC + (
            os.pathsep + env_base["PYTHONPATH"]
            if env_base.get("PYTHONPATH") else ""
        )
        flags = [
            "--users", "4", "--duration", "1.0", "--seed", "29",
            "--topology", "corridor", "--cells", "12",
        ]
        artifacts = {}
        for sched, index in (("coalesced", "on"), ("legacy", "off")):
            env = dict(env_base)
            env["REPRO_BURST_SCHED"] = sched
            env["REPRO_CELL_INDEX"] = index
            out = tmp_path / f"{sched}-{index}.json"
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", "fleet", "run", *flags,
                    "--out", str(out), "--quiet",
                ],
                env=env, capture_output=True, text=True,
            )
            assert result.returncode == 0, result.stderr
            artifacts[(sched, index)] = out.read_bytes()
        assert (
            artifacts[("coalesced", "on")] == artifacts[("legacy", "off")]
        )


class TestObsTopEvents:
    def test_filter_summary_keeps_only_prefixed_rows(self):
        from repro.obs import filter_summary

        summary = {
            "spans": {
                "sim.event.ssb": {"count": 3, "total_s": 0.5},
                "fleet.run": {"count": 1, "total_s": 2.0},
            },
            "counters": {
                "sim.events.ssb.cellA": 3,
                "phy.bursts_measured": 9,
            },
        }
        filtered = filter_summary(summary, "sim.event.", "sim.events.")
        assert set(filtered["spans"]) == {"sim.event.ssb"}
        assert set(filtered["counters"]) == {"sim.events.ssb.cellA"}

    def test_cli_events_view(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fleet.json"
        assert main(
            [
                "fleet", "run", "--users", "2", "--duration", "0.5",
                "--telemetry", "--quiet", "--out", str(out),
            ]
        ) == 0
        sidecar = tmp_path / "fleet.telemetry.json"
        assert sidecar.exists()
        capsys.readouterr()
        assert main(["obs", "top", str(sidecar), "--events"]) == 0
        printed = capsys.readouterr().out
        assert "hottest event spans" in printed
        assert "sim.event." in printed
        # The engine view hides the non-engine rows entirely.
        assert "fleet.run" not in printed
