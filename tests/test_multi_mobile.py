"""Integration: several mobiles with independent protocols in one cell grid.

The deployment broadcasts every SSB burst to every mobile; per-link
channel state, connections and protocol instances must stay fully
isolated.
"""

import math

import pytest

from repro.core.silent_tracker import SilentTracker
from repro.experiments.scenarios import (
    STATION_PHASES_S,
    STATION_POSITIONS,
    BS_BEAMWIDTH_DEG,
    BS_TX_POWER_DBM,
    make_mobile_codebook,
)
from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3
from repro.mobility.walk import HumanWalk
from repro.net.base_station import BaseStation
from repro.net.deployment import Deployment, DeploymentConfig
from repro.net.mobile import Mobile
from repro.phy.codebook import Codebook


@pytest.fixture(scope="module")
def two_mobile_run():
    deployment = Deployment(DeploymentConfig(master_seed=31))
    for cell_id, position in STATION_POSITIONS.items():
        deployment.add_station(
            BaseStation(
                cell_id,
                Pose(position, heading=-math.pi / 2),
                Codebook.uniform_azimuth(BS_BEAMWIDTH_DEG),
                tx_power_dbm=BS_TX_POWER_DBM,
                ssb_phase_s=STATION_PHASES_S[cell_id],
            )
        )
    # Two pedestrians walking opposite directions across the A/B edge.
    east = deployment.add_mobile(
        Mobile(
            "ue-east",
            HumanWalk(Vec3(9.0, 0.0), Vec3(1.4, 0.0),
                      rng=deployment.rng.stream("mob/east")),
            make_mobile_codebook("narrow"),
        )
    )
    west = deployment.add_mobile(
        Mobile(
            "ue-west",
            HumanWalk(Vec3(11.0, -1.0), Vec3(-1.4, 0.0),
                      rng=deployment.rng.stream("mob/west")),
            make_mobile_codebook("narrow"),
        )
    )
    protocol_east = SilentTracker(deployment, east, "cellA")
    protocol_west = SilentTracker(deployment, west, "cellB")
    protocol_east.start()
    protocol_west.start()
    deployment.run(6.0)
    protocol_east.stop()
    protocol_west.stop()
    return deployment, east, west, protocol_east, protocol_west


class TestTwoMobiles:
    def test_both_measured(self, two_mobile_run):
        _, east, west, _, _ = two_mobile_run
        assert east.bursts_measured > 50
        assert west.bursts_measured > 50

    def test_east_hands_to_cellb(self, two_mobile_run):
        _, east, _, protocol_east, _ = two_mobile_run
        completed = [
            r for r in protocol_east.handover_log.records
            if r.complete_s is not None
        ]
        assert completed
        assert completed[0].target_cell == "cellB"

    def test_west_hands_to_cella(self, two_mobile_run):
        _, _, west, _, protocol_west = two_mobile_run
        completed = [
            r for r in protocol_west.handover_log.records
            if r.complete_s is not None
        ]
        assert completed
        assert completed[0].target_cell == "cellA"

    def test_attachments_isolated(self, two_mobile_run):
        deployment, east, west, _, _ = two_mobile_run
        for mobile in (east, west):
            serving = mobile.connection.serving_cell
            attached = [
                s.cell_id
                for s in deployment.stations
                if s.is_attached(mobile.mobile_id)
            ]
            if serving is None:
                assert attached == []
            else:
                assert attached == [serving]

    def test_trace_contains_both(self, two_mobile_run):
        deployment, _, _, _, _ = two_mobile_run
        nodes = {e.node for e in deployment.trace.events}
        assert {"ue-east", "ue-west"} <= nodes

    def test_channel_state_per_link(self, two_mobile_run):
        deployment, _, _, _, _ = two_mobile_run
        # 3 cells x 2 mobiles = up to 6 link states, at least 4 touched.
        assert deployment.channel.active_links >= 4
