"""Tests for the ASCII plotting helpers."""

import pytest

from repro.analysis.plotting import ascii_cdf_plot, ascii_histogram, sparkline


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([0, 1, 2, 3])
        assert line == "▁▃▅█"
        # Heights never decrease for a monotone series.
        levels = [" ▁▂▃▄▅▆▇█".index(c) for c in line]
        assert levels == sorted(levels)

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_length_matches(self):
        assert len(sparkline(list(range(17)))) == 17

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestCdfPlot:
    def test_contains_axes_and_legend(self):
        plot = ascii_cdf_plot({"walk": [0.2, 0.4, 0.9], "rot": [0.3, 0.5]})
        assert "1.00 |" in plot
        assert "walk" in plot and "rot" in plot

    def test_markers_present(self):
        plot = ascii_cdf_plot({"a": [1.0, 2.0, 3.0]})
        assert "*" in plot

    def test_distinct_markers_per_series(self):
        plot = ascii_cdf_plot({"a": [1.0, 2.0], "b": [1.5, 2.5]})
        assert "*" in plot and "o" in plot

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf_plot({})
        with pytest.raises(ValueError):
            ascii_cdf_plot({"a": []})


class TestHistogram:
    def test_counts_sum(self):
        values = [0.1, 0.2, 0.2, 0.9]
        text = ascii_histogram(values, bins=4)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in text.splitlines())
        assert total == len(values)

    def test_title(self):
        text = ascii_histogram([1.0, 2.0], bins=2, title="My Hist")
        assert text.splitlines()[0] == "My Hist"

    def test_bars_scale(self):
        text = ascii_histogram([1.0] * 10 + [2.0], bins=2, width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20  # the dominant bin fills the width
        assert lines[1].count("#") < 20

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_histogram([], bins=4)
        with pytest.raises(ValueError):
            ascii_histogram([1.0], bins=0)
