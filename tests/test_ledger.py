"""Tests for the run ledger (``repro.obs.ledger``) and its CLI verbs."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import ObsError
from repro.obs.ledger import (
    LEDGER_FORMAT,
    RunLedger,
    record_run,
    regress_failures,
)


def _entry(name="run", duration=1.0, **extra):
    entry = {"kind": "fleet", "name": name, "duration_s": duration,
             "status": "ok"}
    entry.update(extra)
    return entry


class TestAppendScan:
    def test_append_assigns_run_id_and_roundtrips(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        run_id = ledger.append(_entry("a"))
        assert run_id.startswith("r")
        entries, corrupt = ledger.scan()
        assert corrupt == 0
        assert [e["name"] for e in entries] == ["a"]
        assert entries[0]["run_id"] == run_id
        assert entries[0]["format"] == LEDGER_FORMAT

    def test_entries_are_one_json_line_each(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        ledger.append(_entry("a"))
        ledger.append(_entry("b"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)  # every line is standalone JSON

    def test_distinct_entries_get_distinct_ids(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ids = {ledger.append(_entry("a", started_at=float(i)))
               for i in range(5)}
        assert len(ids) == 5

    def test_rotation_keeps_one_generation(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path, max_entries=2)
        for index in range(5):
            ledger.append(_entry(f"run-{index}", started_at=float(index)))
        assert ledger.rotated_path.exists()
        # All five entries survive across current + rotated generations?
        # No: rotation drops the oldest generation; the window holds the
        # most recent <= 2*max_entries entries, oldest first.
        names = [e["name"] for e in ledger.entries()]
        assert names == [f"run-{i}" for i in range(5 - len(names), 5)]
        assert 2 <= len(names) <= 4
        assert names[-1] == "run-4"

    def test_corrupt_tail_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        ledger.append(_entry("good"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "fleet", "name": "torn", "dur')  # killed writer
        entries, corrupt = ledger.scan()
        assert [e["name"] for e in entries] == ["good"]
        assert corrupt == 1
        # Appends keep working after the torn line.
        run_id = ledger.append(_entry("after"))
        entries, corrupt = ledger.scan()
        assert [e["name"] for e in entries] == ["good", "after"]
        assert corrupt == 1
        assert entries[-1]["run_id"] == run_id

    def test_non_dict_lines_count_as_corrupt(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('[1, 2]\n{"no_run_id": true}\n')
        entries, corrupt = RunLedger(path).scan()
        assert entries == []
        assert corrupt == 2


class TestFind:
    def test_exact_and_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        run_id = ledger.append(_entry("a"))
        assert ledger.find(run_id)["name"] == "a"
        assert ledger.find(run_id[:5])["name"] == "a"

    def test_missing_and_ambiguous_are_loud(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        with pytest.raises(ObsError, match="no run"):
            ledger.find("nope")
        ledger.append(_entry("a", started_at=1.0))
        ledger.append(_entry("b", started_at=2.0))
        with pytest.raises(ObsError, match="ambiguous"):
            ledger.find("r")  # every run ID starts with "r"


class TestRecordRun:
    def test_successful_run_recorded(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        with record_run(ledger, "fleet", ["fleet", "run"], name="f") as rec:
            rec.hashes = {"fleet": "abc123"}
            rec.artifacts = "out/fleet.json"
        assert rec.run_id is not None
        entry = ledger.find(rec.run_id)
        assert entry["status"] == "ok"
        assert entry["error"] is None
        assert entry["command"] == ["fleet", "run"]
        assert entry["hashes"] == {"fleet": "abc123"}
        assert entry["duration_s"] >= 0.0
        assert "rss_kb" in entry["resources"]

    def test_failure_recorded_then_raised(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        with pytest.raises(RuntimeError, match="boom"):
            with record_run(ledger, "fleet", ["x"], name="f") as rec:
                raise RuntimeError("boom\nsecond line never recorded")
        entry = ledger.find(rec.run_id)
        assert entry["status"] == "failed"
        assert entry["error"] == "RuntimeError: boom"

    def test_none_ledger_writes_nothing(self, tmp_path):
        with record_run(None, "fleet", ["x"], name="f") as rec:
            pass
        assert rec.run_id is None

    def test_ledger_io_error_never_fails_the_run(self, tmp_path):
        # A directory where the ledger file should be -> append raises
        # OSError, which record_run demotes to a warning.
        bad = tmp_path / "runs.jsonl"
        bad.mkdir()
        with record_run(RunLedger(bad), "fleet", ["x"], name="f") as rec:
            pass
        assert rec.run_id is None


class TestRegressFailures:
    def _telemetry(self, scale=1.0):
        return {
            "spans": {
                "fleet.run": {"count": 1, "total_s": 0.5 * scale},
                "tiny.span": {"count": 1, "total_s": 1e-5 * scale},
            }
        }

    def test_identical_runs_pass(self):
        a = _entry(duration=1.0, telemetry=self._telemetry())
        assert regress_failures(a, dict(a), tolerance=0.0) == []

    def test_seeded_slowdown_fails(self):
        a = _entry(duration=1.0, telemetry=self._telemetry())
        b = _entry(duration=10.0, telemetry=self._telemetry(scale=10.0))
        failures = regress_failures(a, b, tolerance=0.25)
        assert "run.duration" in failures
        assert "fleet.run" in failures
        assert "tiny.span" not in failures  # under the noise floor

    def test_faster_is_never_a_failure(self):
        a = _entry(duration=10.0, telemetry=self._telemetry(scale=10.0))
        b = _entry(duration=1.0, telemetry=self._telemetry())
        assert regress_failures(a, b, tolerance=0.0) == []

    def test_tolerance_gates(self):
        a = _entry(duration=1.0)
        b = _entry(duration=1.2)
        assert regress_failures(a, b, tolerance=0.25) == []
        assert regress_failures(a, b, tolerance=0.1) == ["run.duration"]


FLEET_FLAGS = ["--users", "4", "--duration", "0.5", "--seed", "11"]


def _run_fleet(tmp_path, ledger, out_name, extra=()):
    code = main([
        "fleet", "run", *FLEET_FLAGS, "--shards", "2",
        "--out", str(tmp_path / out_name), "--quiet",
        "--ledger", str(ledger), "--telemetry", *extra,
    ])
    assert code == 0


class TestCliHistoryRegress:
    def test_history_lists_recorded_runs(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        _run_fleet(tmp_path, ledger, "a")
        _run_fleet(tmp_path, ledger, "b")
        capsys.readouterr()
        assert main(["obs", "history", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert out.count("fleet-sharded") == 2
        entries = [json.loads(line) for line in
                   ledger.read_text().splitlines()]
        assert len(entries) == 2
        for entry in entries:
            assert entry["run_id"] in out
            assert entry["hashes"]["fleet"] in out
        # --json returns the machine-readable entries.
        assert main(["obs", "history", "--ledger", str(ledger),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [e["run_id"] for e in payload] == \
            [e["run_id"] for e in entries]

    def test_history_empty_ledger(self, tmp_path, capsys):
        assert main(["obs", "history", "--ledger",
                     str(tmp_path / "none.jsonl")]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_regress_last_two_identical_exits_zero(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        _run_fleet(tmp_path, ledger, "a")
        # Duplicate the recorded entry under a fresh ID: a perfectly
        # identical "second run" with zero timing noise.
        entry = json.loads(ledger.read_text().splitlines()[0])
        entry.pop("run_id")
        entry["started_at"] += 1.0
        RunLedger(ledger).append(entry)
        capsys.readouterr()
        assert main(["obs", "regress", "--last", "2",
                     "--ledger", str(ledger)]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_regress_seeded_slowdown_exits_one(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        _run_fleet(tmp_path, ledger, "a")
        entry = json.loads(ledger.read_text().splitlines()[0])
        entry.pop("run_id")
        entry["started_at"] += 1.0
        entry["duration_s"] *= 100.0
        for span in entry["telemetry"]["spans"].values():
            span["total_s"] *= 100.0
        RunLedger(ledger).append(entry)
        capsys.readouterr()
        assert main(["obs", "regress", "--last", "2",
                     "--ledger", str(ledger)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "run.duration" in captured.err

    def test_regress_by_run_ids_and_validation(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        _run_fleet(tmp_path, ledger, "a")
        run_id = json.loads(ledger.read_text())["run_id"]
        capsys.readouterr()
        # A run against itself is identical -> exit 0.
        assert main(["obs", "regress", run_id, run_id,
                     "--ledger", str(ledger)]) == 0
        assert main(["obs", "regress", "--ledger", str(ledger)]) == 2
        assert main(["obs", "regress", "--last", "1",
                     "--ledger", str(ledger)]) == 2
        assert main(["obs", "regress", "--last", "2",
                     "--ledger", str(tmp_path / "empty.jsonl")]) == 2

    def test_obs_top_and_diff_accept_run_ids(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        _run_fleet(tmp_path, ledger, "a")
        run_id = json.loads(ledger.read_text())["run_id"]
        capsys.readouterr()
        assert main(["obs", "top", run_id, "--ledger", str(ledger)]) == 0
        assert "fleet.run" in capsys.readouterr().out
        assert main(["obs", "diff", run_id, run_id,
                     "--ledger", str(ledger)]) == 0
        assert "1.00x" in capsys.readouterr().out

    def test_obs_top_run_without_telemetry_is_loud(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        code = main([
            "fleet", "run", *FLEET_FLAGS, "--shards", "2",
            "--out", str(tmp_path / "plain"), "--quiet",
            "--ledger", str(ledger),
        ])
        assert code == 0
        run_id = json.loads(ledger.read_text())["run_id"]
        capsys.readouterr()
        assert main(["obs", "top", run_id, "--ledger", str(ledger)]) == 2
        assert "no telemetry" in capsys.readouterr().err


class TestCliLedgerRecording:
    def test_fleet_run_records_hashes_and_artifacts(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        _run_fleet(tmp_path, ledger, "a")
        entry = json.loads(ledger.read_text())
        assert entry["kind"] == "fleet-sharded"
        assert entry["hashes"]["shards"] == 2
        assert len(entry["hashes"]["fleet"]) == 16
        assert entry["artifacts"] == str(tmp_path / "a")
        assert entry["command"][0] == "fleet"
        assert entry["telemetry"]["spans"]
        assert entry["status"] == "ok"

    def test_unsharded_fleet_and_failure_recorded(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        assert main([
            "fleet", "run", *FLEET_FLAGS,
            "--out", str(tmp_path / "flat.json"), "--quiet",
            "--ledger", str(ledger),
        ]) == 0
        # Unsatisfiable shard count -> SpecError -> exit 2, recorded.
        assert main([
            "fleet", "run", *FLEET_FLAGS, "--shards", "99",
            "--quiet", "--ledger", str(ledger),
        ]) == 2
        entries = [json.loads(line) for line in
                   ledger.read_text().splitlines()]
        assert [e["kind"] for e in entries] == ["fleet", "fleet-sharded"]
        assert entries[0]["status"] == "ok"
        assert entries[1]["status"] == "failed"
        assert "SpecError" in entries[1]["error"]

    def test_campaign_run_recorded(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        assert main([
            "campaign", "run", "--experiment", "search",
            "--scenarios", "walk", "--seeds", "1", "--quiet",
            "--out", str(tmp_path / "camp"), "--ledger", str(ledger),
        ]) == 0
        entry = json.loads(ledger.read_text())
        assert entry["kind"] == "campaign"
        assert entry["hashes"]["cells"] >= 1
        assert len(entry["hashes"]["campaign"]) == 16
        assert entry["artifacts"] == str(tmp_path / "camp")

    def test_no_ledger_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "fleet", "run", *FLEET_FLAGS,
            "--out", str(tmp_path / "flat.json"), "--quiet", "--no-ledger",
        ]) == 0
        assert not (tmp_path / ".repro").exists()

    def test_default_ledger_is_repo_scoped(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "fleet", "run", *FLEET_FLAGS,
            "--out", str(tmp_path / "flat.json"), "--quiet",
        ]) == 0
        assert (tmp_path / ".repro" / "runs.jsonl").exists()

    def test_artifact_bytes_identical_ledger_on_off(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        for flags, out in (
            (["--ledger", str(ledger)], "with-ledger.json"),
            (["--no-ledger"], "without-ledger.json"),
        ):
            assert main([
                "fleet", "run", *FLEET_FLAGS,
                "--out", str(tmp_path / out), "--quiet", *flags,
            ]) == 0
        assert (tmp_path / "with-ledger.json").read_bytes() == \
            (tmp_path / "without-ledger.json").read_bytes()
