"""Tests for the baseline protocols (reactive hard handover, oracle)."""

import pytest

from repro.core.baselines import OracleTracker, ReactiveHandover, make_baseline
from repro.core.config import SilentTrackerConfig
from repro.experiments.scenarios import build_cell_edge_deployment
from repro.net.deployment import DeploymentConfig
from repro.net.handover import HandoverOutcome
from repro.phy.channel import ChannelConfig


def make_run(protocol, scenario="vehicular", seed=1, deterministic=True,
             config=None):
    deployment_config = DeploymentConfig(
        master_seed=seed,
        channel=ChannelConfig.deterministic() if deterministic else ChannelConfig(),
    )
    deployment, mobile = build_cell_edge_deployment(
        seed, scenario=scenario, config=deployment_config
    )
    instance = make_baseline(protocol, deployment, mobile, "cellA", config)
    return deployment, mobile, instance


class TestFactory:
    def test_builds_each_kind(self):
        _, _, a = make_run("silent-tracker")
        _, _, b = make_run("reactive")
        _, _, c = make_run("oracle")
        assert isinstance(b, ReactiveHandover)
        assert isinstance(c, OracleTracker)

    def test_unknown_rejected(self):
        deployment, mobile = build_cell_edge_deployment(1)
        with pytest.raises(ValueError):
            make_baseline("nope", deployment, mobile, "cellA")


class TestReactive:
    def test_ignores_neighbors_while_connected(self):
        deployment, mobile, reactive = make_run("reactive", scenario="walk")
        reactive.start()
        deployment.run(0.5)
        # No neighbor measurements at all: every cellB burst declined.
        assert deployment.metrics.counter("reactive.blind_search") == 0
        reactive.stop()

    def test_hard_handover_after_link_death(self):
        """Drive past the serving cell until it dies; the reactive mobile
        re-enters via blind search and a hard handover."""
        config = SilentTrackerConfig(rlf_timeout_s=0.1,
                                     context_loss_timeout_s=0.3)
        deployment, mobile, reactive = make_run(
            "reactive", scenario="vehicular", seed=2, config=config
        )
        reactive.start()
        deployment.run(6.0)
        reactive.stop()
        records = [
            r for r in reactive.handover_log.records if r.complete_s is not None
        ]
        assert records, "vehicular run must eventually reconnect"
        assert all(r.outcome is HandoverOutcome.HARD for r in records)
        assert mobile.connection.serving_cell is not None

    def test_interruption_includes_reentry_penalty(self):
        config = SilentTrackerConfig(rlf_timeout_s=0.1,
                                     context_loss_timeout_s=0.3,
                                     hard_reentry_penalty_s=0.1)
        deployment, mobile, reactive = make_run(
            "reactive", scenario="vehicular", seed=2, config=config
        )
        reactive.start()
        deployment.run(6.0)
        reactive.stop()
        record = next(
            r for r in reactive.handover_log.records if r.complete_s is not None
        )
        # At least context-loss timeout + penalty.
        assert record.interruption_s >= 0.3

    def test_cannot_start_twice(self):
        _, _, reactive = make_run("reactive")
        reactive.start()
        with pytest.raises(RuntimeError):
            reactive.start()


class TestOracle:
    def test_oracle_soft_handover(self):
        deployment, mobile, oracle = make_run("oracle", scenario="walk", seed=3)
        oracle.start()
        deployment.run(6.0)
        oracle.stop()
        records = [
            r for r in oracle.handover_log.records if r.complete_s is not None
        ]
        assert records
        assert records[0].outcome is HandoverOutcome.SOFT
        assert mobile.connection.serving_cell == "cellB"

    def test_oracle_interruption_minimal(self):
        deployment, _, oracle = make_run("oracle", scenario="walk", seed=3)
        oracle.start()
        deployment.run(6.0)
        record = next(
            r for r in oracle.handover_log.records if r.complete_s is not None
        )
        assert record.interruption_s < 0.1

    def test_oracle_serving_never_lost_on_walk(self):
        deployment, mobile, oracle = make_run("oracle", scenario="walk", seed=3)
        oracle.start()
        deployment.run(6.0)
        assert deployment.metrics.counter("connection.context_lost") == 0
