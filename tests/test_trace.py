"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceRecorder


def make_recorder():
    trace = TraceRecorder()
    trace.emit(0.1, "fsm.transition", "ue0", edge="B")
    trace.emit(0.2, "rach.msg1", "ue0", result="heard")
    trace.emit(0.3, "fsm.transition", "ue1", edge="C")
    trace.emit(0.4, "fsm", "ue0")
    return trace


class TestEmit:
    def test_len(self):
        assert len(make_recorder()) == 4

    def test_event_fields(self):
        trace = TraceRecorder()
        trace.emit(1.5, "cat", "node", a=1, b="x")
        event = trace.events[0]
        assert event.time == 1.5
        assert event.category == "cat"
        assert event.node == "node"
        assert event.data == {"a": 1, "b": "x"}

    def test_disabled_records_nothing(self):
        trace = TraceRecorder(enabled=False)
        trace.emit(0.0, "cat", "node")
        assert len(trace) == 0

    def test_listener_invoked(self):
        trace = TraceRecorder()
        seen = []
        trace.subscribe(seen.append)
        trace.emit(0.0, "cat", "node")
        assert len(seen) == 1

    def test_multiple_listeners_all_invoked_in_order(self):
        trace = TraceRecorder()
        calls = []
        trace.subscribe(lambda e: calls.append(("a", e.category)))
        trace.subscribe(lambda e: calls.append(("b", e.category)))
        trace.emit(0.0, "cat", "node")
        assert calls == [("a", "cat"), ("b", "cat")]

    def test_listener_sees_full_event(self):
        trace = TraceRecorder()
        seen = []
        trace.subscribe(seen.append)
        trace.emit(1.25, "rach.msg1", "ue3", result="heard")
        event = seen[0]
        assert event.time == 1.25
        assert event.node == "ue3"
        assert event.data == {"result": "heard"}

    def test_disabled_skips_listeners(self):
        trace = TraceRecorder(enabled=False)
        seen = []
        trace.subscribe(seen.append)
        trace.emit(0.0, "cat", "node")
        assert seen == []

    def test_clear_keeps_listeners_subscribed(self):
        trace = TraceRecorder()
        seen = []
        trace.subscribe(seen.append)
        trace.emit(0.0, "cat", "node")
        trace.clear()
        trace.emit(0.1, "cat", "node")
        assert len(seen) == 2
        assert len(trace) == 1


class TestFilter:
    def test_exact_category(self):
        assert len(make_recorder().filter(category="rach.msg1")) == 1

    def test_prefix_matches_descendants(self):
        # 'fsm' matches 'fsm' and 'fsm.transition'.
        assert len(make_recorder().filter(category="fsm")) == 3

    def test_prefix_requires_dot_boundary(self):
        trace = TraceRecorder()
        trace.emit(0.0, "fsmx", "n")
        assert trace.filter(category="fsm") == []

    def test_by_node(self):
        assert len(make_recorder().filter(node="ue1")) == 1

    def test_time_window(self):
        assert len(make_recorder().filter(since=0.2, until=0.3)) == 2

    def test_combined(self):
        events = make_recorder().filter(category="fsm", node="ue0")
        assert [e.time for e in events] == [0.1, 0.4]

    def test_count(self):
        assert make_recorder().count(category="fsm.transition") == 2

    def test_last(self):
        last = make_recorder().last(category="fsm.transition")
        assert last.time == 0.3

    def test_last_none_when_empty(self):
        assert TraceRecorder().last() is None

    def test_clear(self):
        trace = make_recorder()
        trace.clear()
        assert len(trace) == 0
