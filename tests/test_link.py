"""Unit tests for the link budget."""

import pytest

from repro.phy.link import LinkBudget


class TestNoiseFloor:
    def test_default_floor(self):
        budget = LinkBudget(bandwidth_hz=1e9, noise_figure_db=0.0)
        assert budget.noise_floor_dbm == pytest.approx(-84.0)

    def test_noise_figure_raises_floor(self):
        quiet = LinkBudget(noise_figure_db=0.0)
        noisy = LinkBudget(noise_figure_db=8.0)
        assert noisy.noise_floor_dbm == pytest.approx(quiet.noise_floor_dbm + 8.0)


class TestSnr:
    def test_snr_definition(self):
        budget = LinkBudget()
        assert budget.snr_db(budget.noise_floor_dbm) == pytest.approx(0.0)
        assert budget.snr_db(budget.noise_floor_dbm + 10.0) == pytest.approx(10.0)

    def test_rss_for_snr_inverse(self):
        budget = LinkBudget()
        for snr in (-5.0, 0.0, 12.0):
            assert budget.snr_db(budget.rss_for_snr(snr)) == pytest.approx(snr)


class TestDetection:
    def test_threshold_boundary(self):
        budget = LinkBudget(detection_snr_db=5.0)
        at_threshold = budget.rss_for_snr(5.0)
        assert budget.detects(at_threshold)
        assert not budget.detects(at_threshold - 0.01)


class TestPacketSuccess:
    def test_half_at_decode_snr(self):
        budget = LinkBudget(decode_snr_db=5.0)
        rss = budget.rss_for_snr(5.0)
        assert budget.packet_success_probability(rss) == pytest.approx(0.5)

    def test_monotone_in_rss(self):
        budget = LinkBudget()
        probabilities = [
            budget.packet_success_probability(budget.rss_for_snr(snr))
            for snr in range(-10, 25)
        ]
        assert probabilities == sorted(probabilities)

    def test_saturates(self):
        budget = LinkBudget(decode_snr_db=5.0, decode_slope_db=1.0)
        assert budget.packet_success_probability(budget.rss_for_snr(60.0)) == 1.0
        assert budget.packet_success_probability(budget.rss_for_snr(-60.0)) == 0.0

    def test_slope_controls_sharpness(self):
        sharp = LinkBudget(decode_slope_db=0.5)
        soft = LinkBudget(decode_slope_db=3.0)
        rss = sharp.rss_for_snr(sharp.decode_snr_db + 2.0)
        assert sharp.packet_success_probability(
            rss
        ) > soft.packet_success_probability(rss)


class TestShannonRate:
    def test_zero_snr_gives_1bps_per_hz(self):
        budget = LinkBudget(bandwidth_hz=1e9)
        rate = budget.shannon_rate_bps(budget.rss_for_snr(0.0))
        assert rate == pytest.approx(1e9, rel=1e-6)

    def test_monotone(self):
        budget = LinkBudget()
        low = budget.shannon_rate_bps(budget.rss_for_snr(0.0))
        high = budget.shannon_rate_bps(budget.rss_for_snr(20.0))
        assert high > low


class TestValidation:
    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            LinkBudget(bandwidth_hz=0.0)

    def test_rejects_bad_slope(self):
        with pytest.raises(ValueError):
            LinkBudget(decode_slope_db=0.0)
