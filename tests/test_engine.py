"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    EventQueue,
    PeriodicTask,
    SimulationError,
    Simulator,
)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, fired.append, ("b",))
        queue.push(1.0, fired.append, ("a",))
        first = queue.pop()
        second = queue.pop()
        assert (first.time, second.time) == (1.0, 2.0)

    def test_same_time_fifo(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None, label="first")
        second = queue.push(1.0, lambda: None, label="second")
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        keeper = queue.push(2.0, lambda: None)
        event.cancel()
        assert queue.pop() is keeper

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 5.0

    def test_empty_pop(self):
        assert EventQueue().pop() is None
        assert EventQueue().peek_time() is None

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        events = [queue.push(float(k), lambda: None) for k in range(4)]
        assert len(queue) == 4
        events[1].cancel()
        events[2].cancel()
        assert len(queue) == 2

    def test_cancel_idempotent_for_count(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_len_tracks_pops(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        cancelled = queue.push(2.0, lambda: None)
        queue.push(3.0, lambda: None)
        cancelled.cancel()
        queue.pop()
        assert len(queue) == 1
        queue.pop()
        assert len(queue) == 0
        assert queue.pop() is None
        assert len(queue) == 0

    def test_cancel_after_pop_does_not_corrupt_count(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        remaining = queue.push(2.0, lambda: None)
        assert queue.pop() is event
        event.cancel()  # fired handle; must not double-decrement
        assert len(queue) == 1
        assert queue.pop() is remaining


class TestSimulator:
    def test_clock_advances_to_end(self):
        sim = Simulator()
        sim.run_until(5.0)
        assert sim.now == 5.0

    def test_callback_sees_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run_until(2.0)
        assert seen == [1.5]

    def test_events_beyond_horizon_not_fired(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "late")
        sim.run_until(2.0)
        assert fired == []
        sim.run_until(4.0)
        assert fired == ["late"]

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, "now")
        sim.run_until(0.0)
        assert fired == ["now"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_nan_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run_until(2.0)
        assert fired == []

    def test_nested_scheduling(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run_until(3.0)
        assert order == ["outer", "inner"]

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_max_events_guard(self):
        sim = Simulator()

        def storm():
            sim.schedule(0.0, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(SimulationError):
            sim.run_until(1.0, max_events=100)

    def test_stop_halts_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run_until(5.0)
        assert fired == [1]

    def test_events_fired_counter(self):
        sim = Simulator()
        for k in range(4):
            sim.schedule(float(k), lambda: None)
        sim.run_until(10.0)
        assert sim.events_fired == 4

    def test_run_until_idle(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run_until_idle()
        assert fired == ["a", "b"]
        assert sim.now == 2.0

    def test_run_until_idle_honors_stop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run_until_idle()
        assert fired == [1]
        assert sim.pending_events == 1
        sim.run_until_idle()
        assert fired == [1, 2]

    def test_run_until_idle_max_events(self):
        sim = Simulator()

        def storm():
            sim.schedule(0.0, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=50)

    def test_pending_events_exact_after_cancel(self):
        sim = Simulator()
        kept = sim.schedule(1.0, lambda: None)
        doomed = sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        doomed.cancel()
        assert sim.pending_events == 1
        sim.run_until(3.0)
        assert sim.pending_events == 0
        assert kept.cancelled is False


class TestPeriodicTask:
    def test_fires_at_period(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, 0.5, lambda: times.append(sim.now))
        sim.run_until(2.1)
        assert times == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])

    def test_start_delay(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, 1.0, lambda: times.append(sim.now), start_delay=0.25)
        sim.run_until(2.5)
        assert times == pytest.approx([0.25, 1.25, 2.25])

    def test_no_drift_over_many_ticks(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, 0.02, lambda: times.append(sim.now))
        sim.run_until(10.0)
        # The 500th tick lands exactly on 500 * 0.02 despite float steps.
        assert times[500] == pytest.approx(10.0, abs=1e-9)

    def test_stop_inside_callback(self):
        sim = Simulator()
        count = [0]
        task_ref = []

        def tick():
            count[0] += 1
            if count[0] == 3:
                task_ref[0].stop()

        task_ref.append(PeriodicTask(sim, 1.0, tick))
        sim.run_until(10.0)
        assert count[0] == 3

    def test_next_fire_after_stop_inside_callback(self):
        # Regression: the in-flight tick counts as fired, so a stop()
        # from inside the callback leaves next_fire_s pointing at the
        # FOLLOWING tick — a restarted schedule must not repeat it.
        sim = Simulator()
        task_ref = []

        def tick():
            task_ref[0].stop()

        task_ref.append(PeriodicTask(sim, 1.0, tick, start_delay=0.25))
        sim.run_until(2.0)
        assert task_ref[0].ticks_fired == 1
        assert task_ref[0].next_fire_s == pytest.approx(1.25)

    def test_next_fire_after_stop_outside(self):
        sim = Simulator()
        task = PeriodicTask(sim, 1.0, lambda: None)
        sim.run_until(2.5)
        task.stop()
        assert task.next_fire_s == pytest.approx(3.0)

    def test_stop_outside(self):
        sim = Simulator()
        count = [0]
        task = PeriodicTask(sim, 1.0, lambda: count.__setitem__(0, count[0] + 1))
        sim.run_until(2.5)
        task.stop()
        sim.run_until(10.0)
        assert count[0] == 3  # t = 0, 1, 2

    def test_rejects_nonpositive_period(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0.0, lambda: None)


class TestPopBatch:
    def test_returns_all_head_timestamp_events_in_seq_order(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None, label="later")
        a = queue.push(1.0, lambda: None, label="a")
        b = queue.push(1.0, lambda: None, label="b")
        batch = queue.pop_batch()
        assert batch == [a, b]
        assert len(queue) == 1

    def test_skips_cancelled_members(self):
        queue = EventQueue()
        a = queue.push(1.0, lambda: None)
        b = queue.push(1.0, lambda: None)
        c = queue.push(1.0, lambda: None)
        b.cancel()
        assert queue.pop_batch() == [a, c]

    def test_empty_queue(self):
        assert EventQueue().pop_batch() == []

    def test_requeue_restores_events(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(1.0, lambda: None)
        batch = queue.pop_batch()
        queue.requeue(batch[1:])
        assert len(queue) == 1
        assert queue.pop() is batch[1]

    def test_requeue_drops_events_cancelled_after_pop(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(1.0, lambda: None)
        batch = queue.pop_batch()
        batch[1].cancel()
        queue.requeue(batch[1:])
        assert len(queue) == 0
        assert queue.pop() is None


class TestBatchedRunLoop:
    def test_same_time_event_cancelled_by_earlier_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handles = {}

        def first():
            fired.append("first")
            handles["second"].cancel()

        sim.schedule(1.0, first)
        handles["second"] = sim.schedule(1.0, lambda: fired.append("second"))
        sim.run_until(2.0)
        assert fired == ["first"]
        assert sim.pending_events == 0

    def test_stop_mid_batch_requeues_remainder(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: fired.append("second"))
        sim.run_until(2.0)
        assert fired == ["first"]
        assert sim.stop_requested
        assert sim.pending_events == 1
        assert sim.now == pytest.approx(1.0)
        # Resuming fires the requeued event at its original time.
        sim.run_until(2.0)
        assert fired == ["first", "second"]

    def test_max_events_mid_batch_leaves_queue_consistent(self):
        sim = Simulator()
        fired = []
        for name in ("a", "b", "c"):
            sim.schedule(1.0, lambda n=name: fired.append(n))
        with pytest.raises(SimulationError):
            sim.run_until(2.0, max_events=2)
        assert fired == ["a", "b"]
        assert sim.pending_events == 1
        assert sim.now == pytest.approx(1.0)
        sim.run_until(2.0)
        assert fired == ["a", "b", "c"]
        assert sim.now == pytest.approx(2.0)


class TestPeriodicClampedReschedule:
    def test_callback_consuming_time_clamps_instead_of_crashing(self):
        # White-box: a callback that (illegally) advances the clock past
        # its own next tick must clamp the reschedule to "now", not
        # raise a cannot-schedule-in-the-past error.
        sim = Simulator()
        times = []

        def greedy_tick():
            times.append(sim.now)
            if len(times) == 1:
                sim._now = 2.7  # jump past ticks at 1.0 and 2.0

        PeriodicTask(sim, 1.0, greedy_tick)
        sim.run_until(3.5, max_events=10)
        # The overrun grid points (1.0, 2.0) fire as immediate clamped
        # catch-up ticks at the advanced clock, then the drift-free
        # grid resumes at origin + k * period.
        assert times == [0.0, 2.7, 2.7, 3.0]
