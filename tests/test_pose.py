"""Unit tests for repro.geometry.pose."""

import math

import pytest

from repro.geometry.pose import Pose
from repro.geometry.vectors import Vec3


class TestFrames:
    def test_zero_heading_identity(self):
        pose = Pose(Vec3(0, 0), heading=0.0)
        assert pose.world_to_body(0.7) == pytest.approx(0.7)
        assert pose.body_to_world(0.7) == pytest.approx(0.7)

    def test_roundtrip(self):
        pose = Pose(Vec3(1, 2), heading=1.1)
        for azimuth in (-3.0, -1.0, 0.0, 2.0, 3.1):
            recovered = pose.body_to_world(pose.world_to_body(azimuth))
            assert recovered == pytest.approx(
                math.atan2(math.sin(azimuth), math.cos(azimuth))
            )

    def test_rotated_device_sees_target_shift(self):
        # Target due +x in world; device rotated +90deg sees it at -90deg
        # in its body frame.
        pose = Pose(Vec3(0, 0), heading=math.pi / 2)
        assert pose.world_to_body(0.0) == pytest.approx(-math.pi / 2)


class TestBearings:
    def test_bearing_to(self):
        pose = Pose(Vec3(0, 0), heading=0.0)
        assert pose.bearing_to(Vec3(0, 3)) == pytest.approx(math.pi / 2)

    def test_body_bearing_accounts_for_heading(self):
        pose = Pose(Vec3(0, 0), heading=math.pi / 2)
        # Target due north (world +y) is straight ahead in body frame.
        assert pose.body_bearing_to(Vec3(0, 3)) == pytest.approx(0.0)

    def test_distance_to(self):
        pose = Pose(Vec3(1, 1), heading=0.3)
        assert pose.distance_to(Vec3(4, 5)) == 5.0


class TestTransforms:
    def test_moved(self):
        pose = Pose(Vec3(1, 1), heading=0.5)
        moved = pose.moved(Vec3(2, 0))
        assert moved.position == Vec3(3, 1)
        assert moved.heading == 0.5

    def test_rotated_wraps(self):
        pose = Pose(Vec3(0, 0), heading=math.pi - 0.1)
        rotated = pose.rotated(0.2)
        assert rotated.heading == pytest.approx(-math.pi + 0.1)

    def test_immutable(self):
        pose = Pose(Vec3(0, 0), heading=0.0)
        with pytest.raises(Exception):
            pose.heading = 1.0
